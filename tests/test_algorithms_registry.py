"""Tests for the algorithm registry (specs, plans, registration, shims)."""

import numpy as np
import pytest

from repro.algorithms import (
    ALGORITHMS,
    DEFAULT_ALGORITHMS,
    AlgorithmSpec,
    Plan,
    UnknownAlgorithmError,
    algorithm_choices,
    cosma_idle_fraction,
    get_algorithm,
    register,
    register_algorithm,
    registered_algorithms,
    resolve_algorithm,
    unregister,
)
from repro.api import multiply, plan
from repro.experiments.harness import run_algorithm
from repro.workloads.scaling import Scenario, limited_memory_sweep
from repro.workloads.shapes import square_shape

CORE_FIVE = ("COSMA", "ScaLAPACK", "CTF", "CARMA", "Cannon")


@pytest.fixture
def scenario():
    return limited_memory_sweep("square", [9], 2048)[0]


class TestRegistryContents:
    def test_core_five_registered_first(self):
        assert registered_algorithms()[:5] == CORE_FIVE

    def test_default_algorithms_flagged(self):
        assert DEFAULT_ALGORITHMS == ("COSMA", "ScaLAPACK", "CTF", "CARMA")

    def test_aliases_resolve_case_insensitively(self):
        assert resolve_algorithm("SUMMA") == "ScaLAPACK"
        assert resolve_algorithm("summa") == "ScaLAPACK"
        assert resolve_algorithm("2.5D") == "CTF"
        assert resolve_algorithm("cosma") == "COSMA"

    def test_unknown_name_raises_keyerror_subclass(self):
        with pytest.raises(UnknownAlgorithmError):
            get_algorithm("MAGMA")
        with pytest.raises(KeyError):
            resolve_algorithm("MAGMA")

    def test_choices_include_aliases(self):
        choices = algorithm_choices()
        assert {"COSMA", "SUMMA", "2D", "2.5D"} <= set(choices)

    def test_specs_carry_cost_models_and_modes(self):
        for name in CORE_FIVE:
            spec = get_algorithm(name)
            assert spec.io_cost is not None
            assert spec.supports_mode("volume")


class TestMappingView:
    def test_lookup_iteration_and_aliases(self):
        assert callable(ALGORITHMS["COSMA"])
        assert "COSMA" in ALGORITHMS
        assert "SUMMA" in ALGORITHMS  # alias lookup is allowed...
        assert "SUMMA" not in list(ALGORITHMS)  # ...iteration is canonical
        assert set(CORE_FIVE) <= set(ALGORITHMS)

    def test_setitem_registers_and_delitem_unregisters(self, scenario):
        def wrong(a, b, scenario, machine):
            return machine.zeros((scenario.shape.m, scenario.shape.n))

        ALGORITHMS["_wrong"] = wrong
        try:
            assert "_wrong" in ALGORITHMS
            run = run_algorithm("_wrong", scenario, mode="volume")
            assert run.mean_words_per_rank == 0
        finally:
            del ALGORITHMS["_wrong"]
        assert "_wrong" not in ALGORITHMS

    def test_setitem_on_existing_name_keeps_metadata(self):
        original = get_algorithm("COSMA")
        ALGORITHMS["COSMA"] = original.runner  # no-op swap
        spec = get_algorithm("COSMA")
        assert spec.plan_fn is original.plan_fn
        assert spec.io_cost is original.io_cost


class TestPlans:
    @pytest.mark.parametrize("name", CORE_FIVE)
    def test_plan_is_feasible_and_populated(self, name, scenario):
        run_plan = get_algorithm(name).plan(scenario)
        assert isinstance(run_plan, Plan)
        assert run_plan.feasible
        assert run_plan.grid is not None
        assert 1 <= run_plan.processors_used <= scenario.p
        assert run_plan.rounds >= 1
        assert run_plan.predicted_words_per_rank > 0
        assert run_plan.lower_bound_per_rank > 0
        assert run_plan.predicted_optimality_ratio >= 0

    @pytest.mark.parametrize("name", CORE_FIVE)
    def test_plan_rejects_insufficient_aggregate_memory(self, name):
        bad = Scenario(name="bad", shape=square_shape(64), p=2,
                       memory_words=64, regime="limited")
        run_plan = get_algorithm(name).plan(bad)
        assert not run_plan.feasible
        assert "footprint" in run_plan.reason

    def test_cosma_plan_matches_executed_grid(self, rng):
        a = rng.standard_normal((48, 32))
        b = rng.standard_normal((32, 40))
        report = multiply(a, b, processors=9, memory_words=4096)
        assert report.plan.grid == report.grid
        assert report.plan.processors_used == report.processors_used

    def test_api_plan_for_all_registered(self):
        for name in CORE_FIVE:
            run_plan = plan(64, 64, 64, processors=8, memory_words=4096, algorithm=name)
            assert run_plan.algorithm == name
            assert run_plan.feasible

    def test_cosma_idle_fraction_heuristic(self):
        assert cosma_idle_fraction(1) == 0.0
        assert cosma_idle_fraction(9) == pytest.approx(1.5 / 9)
        assert cosma_idle_fraction(1000) == pytest.approx(0.03)


class TestRegistration:
    def test_decorator_registers_runnable_algorithm(self, scenario):
        @register_algorithm("_tmp-echo", aliases=("_tmp-alias",),
                            io_cost=lambda m, n, k, p, s: 1.0)
        def echo(a, b, scenario, machine):
            return machine.zeros((scenario.shape.m, scenario.shape.n))

        try:
            assert resolve_algorithm("_tmp-alias") == "_tmp-echo"
            run = run_algorithm("_tmp-echo", scenario, mode="volume")
            assert run.algorithm == "_tmp-echo"
            # The cost model is visible through the shared predict entry point.
            from repro.baselines.costs import predict
            assert predict("_tmp-echo", scenario).io_words_per_rank == 1.0
        finally:
            unregister("_tmp-echo")

    def test_unregister_retracts_cost_model(self, scenario):
        from repro.baselines.costs import predict

        @register_algorithm("_tmp-cost", io_cost=lambda m, n, k, p, s: 2.0)
        def costed(a, b, scenario, machine):
            return machine.zeros((scenario.shape.m, scenario.shape.n))

        assert predict("_tmp-cost", scenario).io_words_per_rank == 2.0
        unregister("_tmp-cost")
        with pytest.raises(KeyError):
            predict("_tmp-cost", scenario)

    def test_duplicate_name_rejected_without_replace(self):
        spec = get_algorithm("COSMA")
        with pytest.raises(ValueError):
            register(spec)
        register(spec, replace=True)  # idempotent with replace

    def test_alias_collision_with_other_algorithm_rejected(self):
        with pytest.raises(ValueError):
            register(AlgorithmSpec(name="_tmp-thief", runner=lambda *a: None,
                                   aliases=("SUMMA",)))

    def test_extension_self_registers_on_import(self, scenario):
        import repro.extensions.allgather  # noqa: F401 - registers AllGather1D

        assert resolve_algorithm("naive-1D") == "AllGather1D"
        run = run_algorithm("AllGather1D", scenario, mode="volume")
        assert run.mean_words_per_rank > 0

    def test_extension_algorithm_verifies_numerically(self, rng):
        import repro.extensions.allgather  # noqa: F401

        a = rng.standard_normal((24, 16))
        b = rng.standard_normal((16, 20))
        report = multiply(a, b, processors=5, memory_words=8192,
                          algorithm="AllGather1D")
        assert report.correct
        assert np.allclose(report.matrix, a @ b)


class TestRunReportApi:
    @pytest.mark.parametrize("name", CORE_FIVE)
    def test_multiply_works_for_every_algorithm(self, name, rng):
        a = rng.standard_normal((32, 24))
        b = rng.standard_normal((24, 28))
        report = multiply(a, b, processors=4, memory_words=8192, algorithm=name)
        assert report.algorithm == name
        assert report.correct and report.verified
        assert np.allclose(report.matrix, a @ b)
        assert report.cost is not None and report.cost.io_words_per_rank > 0

    def test_multiply_accepts_aliases(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        report = multiply(a, b, processors=4, memory_words=4096, algorithm="SUMMA")
        assert report.algorithm == "ScaLAPACK"

    def test_volume_mode_returns_counters_without_matrix(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        legacy = multiply(a, b, processors=4, memory_words=4096)
        volume = multiply(a, b, processors=4, memory_words=4096, mode="volume")
        assert volume.matrix is None and not volume.verified
        assert volume.mean_words_per_rank == legacy.mean_words_per_rank
        assert volume.rounds == legacy.rounds

    def test_max_idle_fraction_rejected_for_non_cosma(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        with pytest.raises(ValueError):
            multiply(a, b, 4, 4096, 0.25, algorithm="CARMA")

    def test_old_positional_order_still_works(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        report = multiply(a, b, 4, 4096, 0.03)
        assert report.correct


class TestPlanMemoization:
    """AlgorithmSpec.plan is memoized per (algorithm, scenario, options)."""

    def test_repeated_plans_return_cached_object(self, scenario):
        spec = get_algorithm("COSMA")
        first = spec.plan(scenario)
        second = spec.plan(scenario)
        assert first is second  # same LRU entry, grid fitted once

    def test_option_values_key_the_cache(self, scenario):
        spec = get_algorithm("COSMA")
        default = spec.plan(scenario)
        loose = spec.plan(scenario, max_idle_fraction=0.5)
        assert loose is spec.plan(scenario, max_idle_fraction=0.5)
        assert default is spec.plan(scenario)
        assert loose is not default

    def test_reregistration_invalidates_cache(self, scenario):
        from repro.algorithms import ALGORITHMS, Plan, plan_cache_clear

        spec = get_algorithm("COSMA")
        before = spec.plan(scenario)
        # Re-registering (even with identical metadata) must drop cached plans.
        ALGORITHMS["COSMA"] = spec.runner
        after = get_algorithm("COSMA").plan(scenario)
        assert after == before
        assert after is not before
        plan_cache_clear()
        assert isinstance(get_algorithm("COSMA").plan(scenario), Plan)

    def test_unregistered_spec_plans_with_its_own_planner(self, scenario):
        from repro.algorithms import AlgorithmSpec

        standalone = AlgorithmSpec(name="never-registered", runner=lambda a, b, s, m: a)
        run_plan = standalone.plan(scenario)  # must not touch the registry
        assert run_plan.algorithm == "never-registered"
        assert run_plan.feasible

    def test_superseded_spec_keeps_its_own_planner(self, scenario):
        from dataclasses import replace

        from repro.algorithms import register, unregister

        spec = get_algorithm("COSMA")
        marker = Plan(algorithm="marker", scenario=scenario, feasible=True)
        replacement = replace(spec, plan_fn=lambda s, **kw: marker)
        register(replacement, replace=True)
        try:
            # The superseded spec object must not dispatch to the new planner.
            assert spec.plan(scenario).algorithm == "COSMA"
            assert get_algorithm("COSMA").plan(scenario) is marker
        finally:
            register(spec, replace=True)
        unregister_probe = get_algorithm("COSMA")
        assert unregister_probe.plan(scenario).algorithm == "COSMA"
