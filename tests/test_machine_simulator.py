"""Tests for the distributed machine simulator and its counters."""

import numpy as np
import pytest

from repro.machine.counters import CommCounters, RankCounters
from repro.machine.simulator import DistributedMachine, LocalMemoryExceededError


class TestRankCounters:
    def test_total_words(self):
        counters = RankCounters(words_sent=5, words_received=7)
        assert counters.total_words == 12

    def test_copy_is_independent(self):
        counters = RankCounters(words_sent=5)
        clone = counters.copy()
        clone.words_sent = 100
        assert counters.words_sent == 5


class TestCommCounters:
    def test_for_ranks(self):
        counters = CommCounters.for_ranks(4)
        assert counters.p == 4
        assert counters.total_words_sent == 0

    def test_mean_and_max(self):
        counters = CommCounters.for_ranks(2)
        counters.per_rank[0].words_sent = 10
        counters.per_rank[1].words_received = 30
        assert counters.mean_words_per_rank() == 20.0
        assert counters.max_words_per_rank() == 30

    def test_megabytes_conversion(self):
        counters = CommCounters.for_ranks(1)
        counters.per_rank[0].words_sent = 1_000_000
        assert counters.mean_megabytes_per_rank(word_bytes=8) == pytest.approx(8.0)

    def test_reset(self):
        counters = CommCounters.for_ranks(1)
        counters.per_rank[0].words_sent = 10
        counters.reset()
        assert counters.total_words_sent == 0

    def test_snapshot_is_deep(self):
        counters = CommCounters.for_ranks(1)
        snap = counters.snapshot()
        counters.per_rank[0].words_sent = 99
        assert snap.per_rank[0].words_sent == 0


class TestDistributedMachine:
    def test_requires_positive_p(self):
        with pytest.raises(ValueError):
            DistributedMachine(0)

    def test_rank_bounds(self):
        machine = DistributedMachine(2)
        with pytest.raises(IndexError):
            machine.rank(2)

    def test_send_counts_words_and_messages(self):
        machine = DistributedMachine(2)
        block = np.ones((3, 4))
        delivered = machine.send(0, 1, block)
        assert delivered.shape == (3, 4)
        assert machine.rank(0).counters.words_sent == 12
        assert machine.rank(1).counters.words_received == 12
        assert machine.rank(0).counters.messages_sent == 1
        assert machine.rank(1).counters.messages_received == 1

    def test_send_to_self_is_free(self):
        machine = DistributedMachine(2)
        machine.send(0, 0, np.ones(10))
        assert machine.counters.total_words_sent == 0

    def test_send_returns_copy(self):
        machine = DistributedMachine(2)
        block = np.ones(4)
        delivered = machine.send(0, 1, block)
        delivered[0] = 99
        assert block[0] == 1.0

    def test_conservation(self):
        machine = DistributedMachine(3)
        machine.send(0, 1, np.ones(5))
        machine.send(1, 2, np.ones((2, 2)))
        assert machine.counters.conservation_ok()

    def test_kind_splits_input_output(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5), kind="input")
        machine.send(0, 1, np.ones(3), kind="output")
        assert machine.rank(1).counters.input_words == 5
        assert machine.rank(1).counters.output_words == 3

    def test_rounds_counted(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5))
        machine.send(0, 1, np.ones(5), count_round=False)
        assert machine.rank(0).counters.rounds == 1

    def test_local_multiply_counts_flops(self):
        machine = DistributedMachine(1)
        a = np.ones((2, 3))
        b = np.ones((3, 4))
        product = machine.local_multiply(0, a, b)
        assert product.shape == (2, 4)
        assert machine.rank(0).counters.flops == 2 * 2 * 3 * 4

    def test_local_multiply_accumulates(self):
        machine = DistributedMachine(1)
        acc = np.zeros((2, 2))
        machine.local_multiply(0, np.eye(2), np.eye(2), accumulate_into=acc)
        machine.local_multiply(0, np.eye(2), np.eye(2), accumulate_into=acc)
        assert np.allclose(acc, 2 * np.eye(2))

    def test_local_multiply_shape_mismatch(self):
        machine = DistributedMachine(1)
        with pytest.raises(ValueError):
            machine.local_multiply(0, np.ones((2, 3)), np.ones((4, 2)))

    def test_local_add(self):
        machine = DistributedMachine(1)
        target = np.zeros(3)
        machine.local_add(0, target, np.arange(3.0))
        assert np.allclose(target, [0, 1, 2])
        assert machine.rank(0).counters.flops == 3

    def test_store_and_resident_words(self):
        machine = DistributedMachine(1)
        machine.rank(0).put("A", np.ones((4, 4)))
        assert machine.rank(0).resident_words() == 16

    def test_check_memory_records_peak(self):
        machine = DistributedMachine(1, memory_words=100)
        machine.rank(0).put("A", np.ones(60))
        machine.check_memory()
        assert machine.peak_resident_words == 60

    def test_check_memory_enforces(self):
        machine = DistributedMachine(1, memory_words=10, enforce_memory=True)
        machine.rank(0).put("A", np.ones(20))
        with pytest.raises(LocalMemoryExceededError):
            machine.check_memory()

    def test_check_memory_with_extra_words(self):
        machine = DistributedMachine(2, memory_words=100)
        machine.rank(0).put("A", np.ones(10))
        worst = machine.check_memory(extra_words={0: 50})
        assert worst == 60

    def test_gather_results_no_accounting(self):
        machine = DistributedMachine(2)
        machine.rank(0).put("C", np.ones(3))
        machine.gather_results("C")
        assert machine.counters.total_words_sent == 0

    def test_sendrecv_counts_single_round(self):
        machine = DistributedMachine(2)
        machine.sendrecv(0, 1, np.ones(4), 1, 0, np.ones(4))
        assert machine.rank(0).counters.rounds == 1
        assert machine.rank(1).counters.rounds == 1
        assert machine.rank(0).counters.words_sent == 4
        assert machine.rank(0).counters.words_received == 4

    def test_reset_counters(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5))
        machine.reset_counters()
        assert machine.counters.total_words_sent == 0
        assert machine.peak_resident_words == 0
