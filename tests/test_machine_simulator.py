"""Tests for the distributed machine simulator and its counters."""

import numpy as np
import pytest

from repro.machine.counters import CommCounters, RankCounters
from repro.machine.simulator import DistributedMachine, LocalMemoryExceededError


class TestRankCounters:
    def test_total_words(self):
        counters = RankCounters(words_sent=5, words_received=7)
        assert counters.total_words == 12

    def test_copy_is_independent(self):
        counters = RankCounters(words_sent=5)
        clone = counters.copy()
        clone.words_sent = 100
        assert counters.words_sent == 5


class TestCommCounters:
    def test_for_ranks(self):
        counters = CommCounters.for_ranks(4)
        assert counters.p == 4
        assert counters.total_words_sent == 0

    def test_mean_and_max(self):
        counters = CommCounters.for_ranks(2)
        counters.per_rank[0].words_sent = 10
        counters.per_rank[1].words_received = 30
        assert counters.mean_words_per_rank() == 20.0
        assert counters.max_words_per_rank() == 30

    def test_megabytes_conversion(self):
        counters = CommCounters.for_ranks(1)
        counters.per_rank[0].words_sent = 1_000_000
        assert counters.mean_megabytes_per_rank(word_bytes=8) == pytest.approx(8.0)

    def test_reset(self):
        counters = CommCounters.for_ranks(1)
        counters.per_rank[0].words_sent = 10
        counters.reset()
        assert counters.total_words_sent == 0

    def test_snapshot_is_deep(self):
        counters = CommCounters.for_ranks(1)
        snap = counters.snapshot()
        counters.per_rank[0].words_sent = 99
        assert snap.per_rank[0].words_sent == 0


class TestDistributedMachine:
    def test_requires_positive_p(self):
        with pytest.raises(ValueError):
            DistributedMachine(0)

    def test_rank_bounds(self):
        machine = DistributedMachine(2)
        with pytest.raises(IndexError):
            machine.rank(2)

    def test_send_counts_words_and_messages(self):
        machine = DistributedMachine(2)
        block = np.ones((3, 4))
        delivered = machine.send(0, 1, block)
        assert delivered.shape == (3, 4)
        assert machine.rank(0).counters.words_sent == 12
        assert machine.rank(1).counters.words_received == 12
        assert machine.rank(0).counters.messages_sent == 1
        assert machine.rank(1).counters.messages_received == 1

    def test_send_to_self_is_free(self):
        machine = DistributedMachine(2)
        machine.send(0, 0, np.ones(10))
        assert machine.counters.total_words_sent == 0

    def test_send_returns_copy(self):
        machine = DistributedMachine(2)
        block = np.ones(4)
        delivered = machine.send(0, 1, block)
        delivered[0] = 99
        assert block[0] == 1.0

    def test_conservation(self):
        machine = DistributedMachine(3)
        machine.send(0, 1, np.ones(5))
        machine.send(1, 2, np.ones((2, 2)))
        assert machine.counters.conservation_ok()

    def test_kind_splits_input_output(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5), kind="input")
        machine.send(0, 1, np.ones(3), kind="output")
        assert machine.rank(1).counters.input_words == 5
        assert machine.rank(1).counters.output_words == 3

    def test_rounds_counted(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5))
        machine.send(0, 1, np.ones(5), count_round=False)
        assert machine.rank(0).counters.rounds == 1

    def test_local_multiply_counts_flops(self):
        machine = DistributedMachine(1)
        a = np.ones((2, 3))
        b = np.ones((3, 4))
        product = machine.local_multiply(0, a, b)
        assert product.shape == (2, 4)
        assert machine.rank(0).counters.flops == 2 * 2 * 3 * 4

    def test_local_multiply_accumulates(self):
        machine = DistributedMachine(1)
        acc = np.zeros((2, 2))
        machine.local_multiply(0, np.eye(2), np.eye(2), accumulate_into=acc)
        machine.local_multiply(0, np.eye(2), np.eye(2), accumulate_into=acc)
        assert np.allclose(acc, 2 * np.eye(2))

    def test_local_multiply_shape_mismatch(self):
        machine = DistributedMachine(1)
        with pytest.raises(ValueError):
            machine.local_multiply(0, np.ones((2, 3)), np.ones((4, 2)))

    def test_local_add(self):
        machine = DistributedMachine(1)
        target = np.zeros(3)
        machine.local_add(0, target, np.arange(3.0))
        assert np.allclose(target, [0, 1, 2])
        assert machine.rank(0).counters.flops == 3

    def test_store_and_resident_words(self):
        machine = DistributedMachine(1)
        machine.rank(0).put("A", np.ones((4, 4)))
        assert machine.rank(0).resident_words() == 16

    def test_check_memory_records_peak(self):
        machine = DistributedMachine(1, memory_words=100)
        machine.rank(0).put("A", np.ones(60))
        machine.check_memory()
        assert machine.peak_resident_words == 60

    def test_check_memory_enforces(self):
        machine = DistributedMachine(1, memory_words=10, enforce_memory=True)
        machine.rank(0).put("A", np.ones(20))
        with pytest.raises(LocalMemoryExceededError):
            machine.check_memory()

    def test_check_memory_with_extra_words(self):
        machine = DistributedMachine(2, memory_words=100)
        machine.rank(0).put("A", np.ones(10))
        worst = machine.check_memory(extra_words={0: 50})
        assert worst == 60

    def test_gather_results_no_accounting(self):
        machine = DistributedMachine(2)
        machine.rank(0).put("C", np.ones(3))
        machine.gather_results("C")
        assert machine.counters.total_words_sent == 0

    def test_sendrecv_counts_single_round(self):
        machine = DistributedMachine(2)
        machine.sendrecv(0, 1, np.ones(4), 1, 0, np.ones(4))
        assert machine.rank(0).counters.rounds == 1
        assert machine.rank(1).counters.rounds == 1
        assert machine.rank(0).counters.words_sent == 4
        assert machine.rank(0).counters.words_received == 4

    def test_reset_counters(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5))
        machine.reset_counters()
        assert machine.counters.total_words_sent == 0
        assert machine.peak_resident_words == 0


class TestBatchedCounterEngine:
    """post_transfers and the CounterMatrix must mirror per-send accounting."""

    def test_post_transfers_matches_sequential_sends(self):
        batched = DistributedMachine(4)
        serial = DistributedMachine(4)
        pairs = [(0, 1, 5), (0, 2, 7), (1, 3, 5), (0, 1, 2)]
        for src, dst, words in pairs:
            serial.send(src, dst, np.ones(words), kind="output")
        batched.post_transfers(
            [s for s, _, _ in pairs], [d for _, d, _ in pairs],
            [w for _, _, w in pairs], kind="output",
        )
        assert [r.counters.copy() for r in batched.ranks] == [
            r.counters.copy() for r in serial.ranks
        ]

    def test_post_transfers_scalar_words(self):
        machine = DistributedMachine(3)
        machine.post_transfers([0, 0], [1, 2], 4)
        assert machine.rank(0).counters.words_sent == 8
        assert machine.rank(1).counters.words_received == 4
        assert machine.counters.conservation_ok()

    def test_counter_matrix_is_shared_with_ranks(self):
        machine = DistributedMachine(2)
        machine.rank(0).counters.flops += 9
        assert machine.counters.matrix.data[4, 0] == 9  # FLOPS row
        assert machine.counters.total_flops == 9

    def test_vectorized_aggregates_return_python_numbers(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5))
        counters = machine.counters
        assert isinstance(counters.total_words_sent, int)
        assert isinstance(counters.max_words_per_rank(), int)
        assert isinstance(counters.mean_words_per_rank(), float)
        assert isinstance(counters.max_messages_per_rank(), int)


class TestRoundCompression:
    """The machine-level replay/commit protocol."""

    def _round(self, machine):
        machine.send(0, 1, machine.zeros((3, 3)))
        machine.send(1, 2, machine.zeros((2, 2)))

    def test_replay_requires_volume_mode(self):
        machine = DistributedMachine(2, mode="legacy", compress_rounds=True)
        assert machine.compressor is None
        assert machine.replay_round("fp") is None

    def test_identical_consecutive_rounds_replay(self):
        compressed = DistributedMachine(3, mode="volume", compress_rounds=True)
        plain = DistributedMachine(3, mode="volume")
        for _ in range(5):
            if compressed.replay_round("steady") is None:
                self._round(compressed)
                compressed.commit_round()
            self._round(plain)
        assert [r.counters.copy() for r in compressed.ranks] == [
            r.counters.copy() for r in plain.ranks
        ]
        # Round 1 executes, round 2 executes (different predecessor), 3-5 replay.
        assert compressed.compressor.executed_rounds == 2
        assert compressed.compressor.replayed_rounds == 3

    def test_round_start_words_stays_identical(self):
        # mark_round_start couples a round's delta to its predecessor; the
        # (prev, cur) cache keying must keep the bookkeeping byte-identical.
        compressed = DistributedMachine(3, mode="volume", compress_rounds=True)
        plain = DistributedMachine(3, mode="volume")
        for i in range(6):
            fp = "warmup" if i == 0 else "steady"
            if compressed.replay_round(fp) is None:
                compressed.counters.mark_round_start()
                self._round(compressed)
                if i == 0:
                    compressed.send(0, 2, compressed.zeros((4, 4)))
                compressed.commit_round()
            plain.counters.mark_round_start()
            self._round(plain)
            if i == 0:
                plain.send(0, 2, plain.zeros((4, 4)))
        assert [r.counters.copy() for r in compressed.ranks] == [
            r.counters.copy() for r in plain.ranks
        ]

    def test_reset_counters_clears_compressor_cache(self):
        machine = DistributedMachine(3, mode="volume", compress_rounds=True)
        assert machine.replay_round("fp") is None
        self._round(machine)
        machine.commit_round()
        machine.reset_counters()
        assert machine.compressor.replayed_rounds == 0
        assert machine.replay_round("fp") is None  # cache is empty again
        self._round(machine)
        machine.commit_round()

    def test_dataclass_style_construction(self):
        # RankCounters predates the CounterMatrix and was a dataclass;
        # positional field order and duplicate rejection must survive.
        counters = RankCounters(5, 7)
        assert counters.words_sent == 5
        assert counters.words_received == 7
        with pytest.raises(TypeError):
            RankCounters(5, words_sent=1)
        with pytest.raises(TypeError):
            RankCounters(unknown_field=1)
