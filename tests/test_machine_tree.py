"""Tests for topology-aware broadcast trees (section 7.2)."""

import pytest

from repro.machine.tree import (
    binomial_tree,
    compare_trees,
    grid_distance,
    node_distance,
    topology_aware_tree,
)


class TestBinomialTree:
    def test_all_ranks_attached(self):
        tree = binomial_tree(list(range(8)), root=0)
        assert set(tree.parent) == set(range(1, 8))

    def test_depth_is_log_p(self):
        tree = binomial_tree(list(range(8)), root=0)
        assert tree.depth() == 3

    def test_arbitrary_root(self):
        tree = binomial_tree([3, 5, 9, 11], root=9)
        assert tree.root == 9
        assert set(tree.parent) == {3, 5, 11}

    def test_unknown_root_rejected(self):
        with pytest.raises(ValueError):
            binomial_tree([0, 1, 2], root=7)

    def test_single_rank(self):
        tree = binomial_tree([4], root=4)
        assert tree.parent == {}
        assert tree.depth() == 0


class TestDistances:
    def test_grid_distance_neighbours(self):
        dist = grid_distance((2, 2, 2))
        # rank 0 = (0,0,0), rank 1 = (0,0,1): one hop along k.
        assert dist(0, 1) == 1.0
        # rank 0 = (0,0,0), rank 7 = (1,1,1): three hops.
        assert dist(0, 7) == 3.0

    def test_grid_distance_symmetric(self):
        dist = grid_distance((3, 4, 2))
        for a in range(0, 24, 5):
            for b in range(0, 24, 7):
                assert dist(a, b) == dist(b, a)

    def test_node_distance(self):
        dist = node_distance(4)
        assert dist(0, 3) == 0.0
        assert dist(0, 4) == 1.0


class TestTopologyAwareTree:
    def test_all_ranks_attached(self):
        dist = grid_distance((2, 4, 1))
        tree = topology_aware_tree(list(range(8)), root=0, distance=dist)
        assert set(tree.parent) == set(range(1, 8))

    def test_respects_max_degree(self):
        dist = grid_distance((4, 4, 1))
        tree = topology_aware_tree(list(range(16)), root=0, distance=dist, max_degree=2)
        assert tree.max_children() <= 2

    def test_no_cycles_and_root_reachable(self):
        dist = node_distance(4)
        tree = topology_aware_tree(list(range(12)), root=5, distance=dist)
        assert tree.depth() >= 1

    def test_beats_or_ties_binomial_on_hops(self):
        # On a 4x4x1 grid with row-major rank placement the greedy tree should
        # use significantly fewer grid hops than the placement-oblivious tree.
        dist = grid_distance((4, 4, 1))
        stats = compare_trees(list(range(16)), root=0, distance=dist)
        assert stats["topology_aware"]["total_hops"] <= stats["binomial"]["total_hops"]

    def test_node_locality_exploited(self):
        # With 9 ranks per node (the paper's ScaLAPACK configuration), a
        # topology-aware tree keeps most edges inside a node.
        dist = node_distance(9)
        stats = compare_trees(list(range(36)), root=0, distance=dist)
        assert stats["topology_aware"]["total_hops"] < stats["binomial"]["total_hops"]
        # Only ~(number of nodes - 1) edges need to cross node boundaries.
        assert stats["topology_aware"]["total_hops"] <= 4

    def test_unknown_root_rejected(self):
        with pytest.raises(ValueError):
            topology_aware_tree([0, 1], root=9, distance=node_distance(2))

    def test_duplicate_ranks_deduplicated(self):
        dist = node_distance(2)
        tree = topology_aware_tree([0, 1, 1, 2], root=0, distance=dist)
        assert set(tree.parent) == {1, 2}
