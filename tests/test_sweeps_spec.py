"""Tests for the declarative sweep specification and its expansion."""

import pytest

from repro.sweeps.spec import FAMILIES, REGIMES, RunRequest, SweepSpec, request_from_dict, spec_from_scenarios
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import square_shape


def small_spec(**overrides) -> SweepSpec:
    base = dict(
        name="unit",
        algorithms=("COSMA", "CARMA"),
        families=("square",),
        regimes=("limited",),
        p_values=(4, 9),
        memory_words=1024,
        mode="volume",
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            small_spec(algorithms=("COSMA", "MAGMA"))

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            small_spec(families=("round",))

    def test_unknown_regime_rejected(self):
        with pytest.raises(ValueError):
            small_spec(regimes=("weak",))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            small_spec(mode="turbo")

    def test_known_constants_cover_generators(self):
        assert set(FAMILIES) == {"square", "largeK", "largeM", "flat"}
        assert set(REGIMES) == {"strong", "limited", "extra"}


class TestExpansion:
    def test_grid_size(self):
        spec = small_spec(families=("square", "largeK"), regimes=("limited", "extra"))
        assert len(spec.scenarios()) == 2 * 2 * 2
        assert len(spec.expand()) == 2 * 2 * 2 * 2

    def test_order_is_scenario_major(self):
        requests = small_spec().expand()
        assert [r.algorithm for r in requests] == ["COSMA", "CARMA", "COSMA", "CARMA"]
        assert requests[0].scenario == requests[1].scenario
        assert requests[0].scenario != requests[2].scenario

    def test_expansion_deterministic(self):
        a = [r.key for r in small_spec().expand()]
        b = [r.key for r in small_spec().expand()]
        assert a == b

    def test_strong_regime_derives_shape(self):
        spec = small_spec(regimes=("strong",))
        scenarios = spec.scenarios()
        assert all(s.regime == "strong" for s in scenarios)
        # strong scaling: one fixed shape across core counts
        assert len({(s.shape.m, s.shape.n, s.shape.k) for s in scenarios}) == 1

    def test_explicit_points_appended_and_deduplicated(self):
        point = Scenario(name="pin", shape=square_shape(16), p=4, memory_words=512, regime="strong")
        spec = small_spec(points=(point, point))
        names = [s.name for s in spec.scenarios()]
        assert names.count("pin") == 1
        assert names[-1] == "pin"

    def test_spec_from_scenarios_only_points(self):
        point = Scenario(name="only", shape=square_shape(16), p=4, memory_words=512, regime="strong")
        spec = spec_from_scenarios([point], algorithms=("COSMA",), mode="volume")
        assert [s.name for s in spec.scenarios()] == ["only"]
        assert len(spec.expand()) == 1


class TestSerialization:
    def test_roundtrip_preserves_expansion(self):
        point = Scenario(name="pin", shape=square_shape(16), p=4, memory_words=512, regime="strong")
        spec = small_spec(points=(point,))
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert [r.key for r in clone.expand()] == [r.key for r in spec.expand()]

    def test_unknown_field_rejected(self):
        data = small_spec().to_dict()
        data["cluster"] = "daint"
        with pytest.raises(ValueError):
            SweepSpec.from_dict(data)

    def test_request_roundtrip(self):
        request = small_spec().expand()[0]
        clone = request_from_dict(request.to_dict())
        assert clone == request
        assert clone.key == request.key


class TestKeys:
    def test_key_changes_with_every_identity_field(self):
        base = small_spec().expand()[0]
        variants = [
            RunRequest(algorithm="CARMA", scenario=base.scenario, mode=base.mode, seed=base.seed),
            RunRequest(algorithm=base.algorithm, scenario=base.scenario, mode="legacy", seed=base.seed),
            RunRequest(algorithm=base.algorithm, scenario=base.scenario, mode=base.mode, seed=7),
            RunRequest(algorithm=base.algorithm, scenario=base.scenario, mode=base.mode,
                       seed=base.seed, verify=False),
        ]
        keys = {base.key} | {v.key for v in variants}
        assert len(keys) == 1 + len(variants)


class TestCompressRounds:
    def test_compress_rounds_is_not_part_of_the_key(self):
        base = small_spec().expand()[0]
        compressed = RunRequest(
            algorithm=base.algorithm, scenario=base.scenario, mode=base.mode,
            seed=base.seed, verify=base.verify, compress_rounds=True,
        )
        # Counters are byte-identical across the flag, so cached records must
        # answer both variants.
        assert compressed.key == base.key

    def test_compress_rounds_roundtrips_and_defaults(self):
        base = small_spec().expand()[0]
        compressed = RunRequest(
            algorithm=base.algorithm, scenario=base.scenario, compress_rounds=True,
        )
        assert request_from_dict(compressed.to_dict()).compress_rounds is True
        payload = base.to_dict()
        payload.pop("compress_rounds")  # pre-flag worker payloads stay loadable
        assert request_from_dict(payload).compress_rounds is False
