"""Tests for the ASCII plotting helpers."""

from repro.experiments.plotting import ascii_series_plot, ascii_stacked_bars, sparkline


class TestSeriesPlot:
    def test_contains_all_algorithms_and_points(self):
        series = {
            "COSMA": [(4, 1.0), (16, 0.5)],
            "ScaLAPACK": [(4, 2.0), (16, 1.5)],
        }
        text = ascii_series_plot(series, y_label="MB per rank")
        assert "COSMA" in text and "ScaLAPACK" in text
        assert "x = 4" in text and "x = 16" in text
        assert "MB per rank" in text

    def test_larger_value_gets_longer_bar(self):
        series = {"A": [(1, 1.0)], "B": [(1, 100.0)]}
        text = ascii_series_plot(series, log_y=False)
        bar_a = next(line for line in text.splitlines() if line.strip().startswith("A"))
        bar_b = next(line for line in text.splitlines() if line.strip().startswith("B"))
        assert bar_b.count("#") > bar_a.count("#")

    def test_log_scaling_compresses(self):
        series = {"A": [(1, 1.0)], "B": [(1, 1000.0)], "C": [(1, 10.0)]}
        log_text = ascii_series_plot(series, log_y=True, width=30)
        lin_text = ascii_series_plot(series, log_y=False, width=30)
        log_c = next(line for line in log_text.splitlines() if line.strip().startswith("C")).count("#")
        lin_c = next(line for line in lin_text.splitlines() if line.strip().startswith("C")).count("#")
        assert log_c > lin_c

    def test_empty_series(self):
        assert ascii_series_plot({}) == "(no data)"
        assert ascii_series_plot({"A": []}) == "(no data)"

    def test_constant_series(self):
        text = ascii_series_plot({"A": [(1, 5.0), (2, 5.0)]})
        assert "A" in text


class TestStackedBars:
    def test_legend_and_rows(self):
        rows = [
            {"label": "p=4", "comm": 1.0, "comp": 3.0},
            {"label": "p=64", "comm": 2.0, "comp": 1.0},
        ]
        text = ascii_stacked_bars(rows, "label", ["comm", "comp"])
        assert "legend" in text
        assert "p=4" in text and "p=64" in text
        assert "=" in text and "~" in text

    def test_bar_lengths_proportional(self):
        rows = [
            {"label": "small", "x": 1.0},
            {"label": "large", "x": 10.0},
        ]
        text = ascii_stacked_bars(rows, "label", ["x"], width=20)
        small = next(line for line in text.splitlines() if line.startswith("small")).count("=")
        large = next(line for line in text.splitlines() if line.startswith("large")).count("=")
        assert large > small

    def test_empty(self):
        assert ascii_stacked_bars([], "label", ["x"]) == "(no data)"


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_constant_input(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_values_monotone_blocks(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == "▁"
        assert line[-1] == "█"
