"""Tests for one-sided (RMA) communication primitives."""

import numpy as np
import pytest

from repro.machine.rma import rma_accumulate, rma_get, rma_put
from repro.machine.simulator import DistributedMachine


@pytest.fixture
def machine():
    return DistributedMachine(4, memory_words=1 << 16)


class TestRmaGet:
    def test_data_flows_target_to_origin(self, machine):
        block = np.arange(6.0)
        out = rma_get(machine, origin=0, target=1, block=block)
        assert np.allclose(out, block)
        assert machine.rank(1).counters.words_sent == 6
        assert machine.rank(0).counters.words_received == 6

    def test_only_origin_round_advances(self, machine):
        rma_get(machine, origin=0, target=1, block=np.ones(4))
        assert machine.rank(0).counters.rounds == 1
        assert machine.rank(1).counters.rounds == 0

    def test_self_get_is_free(self, machine):
        out = rma_get(machine, origin=2, target=2, block=np.ones(3))
        assert np.allclose(out, 1.0)
        assert machine.counters.total_words_sent == 0


class TestRmaPut:
    def test_data_flows_origin_to_target(self, machine):
        out = rma_put(machine, origin=0, target=3, block=np.full(5, 2.0))
        assert np.allclose(out, 2.0)
        assert machine.rank(0).counters.words_sent == 5
        assert machine.rank(3).counters.words_received == 5

    def test_only_origin_round_advances(self, machine):
        rma_put(machine, origin=0, target=3, block=np.ones(2))
        assert machine.rank(0).counters.rounds == 1
        assert machine.rank(3).counters.rounds == 0


class TestRmaAccumulate:
    def test_accumulates_into_target_buffer(self, machine):
        buffer = np.ones(4)
        rma_accumulate(machine, origin=0, target=1, block=np.full(4, 3.0), target_buffer=buffer)
        assert np.allclose(buffer, 4.0)

    def test_addition_flops_charged_to_target(self, machine):
        buffer = np.zeros(4)
        rma_accumulate(machine, origin=0, target=1, block=np.ones(4), target_buffer=buffer)
        assert machine.rank(1).counters.flops == 4
        assert machine.rank(0).counters.flops == 0

    def test_self_accumulate(self, machine):
        buffer = np.zeros(3)
        rma_accumulate(machine, origin=2, target=2, block=np.ones(3), target_buffer=buffer)
        assert np.allclose(buffer, 1.0)
        assert machine.counters.total_words_sent == 0

    def test_volume_counted_as_output(self, machine):
        buffer = np.zeros(4)
        rma_accumulate(machine, origin=0, target=1, block=np.ones(4), target_buffer=buffer)
        assert machine.rank(1).counters.output_words == 4
