"""Telemetry layer: zero-perturbation tracing of the simulated machine.

The hard guarantee under test: tracing only *reads* simulator state, so the
communication-counter matrix is byte-identical traced vs untraced across all
four transports and every registered algorithm, and the golden sweep rows do
not move.  On top of that, the exported Chrome trace validates against the
trace-event schema, every counted round yields a span (compressed replays
included), and plane-mode GEMM time is split from counter-accounting time.
"""

import json
from contextlib import nullcontext

import numpy as np
import pytest

from repro.algorithms import get_algorithm, registered_algorithms
from repro.api import multiply
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import MODES, ShapeToken
from repro.obs import (
    Tracer,
    active_tracer,
    chrome_trace_document,
    disable_tracing,
    enable_tracing,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_log,
)
from repro.sweeps import SweepSpec, tidy_rows
from repro.sweeps.runner import execute_request
from repro.workloads.scaling import limited_memory_sweep


def _counter_bytes(algorithm: str, mode: str, traced: bool) -> bytes:
    """Run one (algorithm, mode) point and return the raw counter matrix."""
    scenario = limited_memory_sweep("square", [4], 2048)[0]
    spec = get_algorithm(algorithm)
    shape = scenario.shape
    if mode == "volume":
        a = ShapeToken((shape.m, shape.k))
        b = ShapeToken((shape.k, shape.n))
    else:
        a, b = shape.random_matrices(seed=0)
    with tracing() if traced else nullcontext():
        machine = DistributedMachine(
            scenario.p, memory_words=scenario.memory_words, mode=mode
        )
        spec.run(a, b, scenario, machine)
    machine.counters.assert_conservation()
    return machine.counters.matrix.data.tobytes()


class TestZeroPerturbation:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("algorithm", registered_algorithms())
    def test_counters_byte_identical_traced_vs_untraced(self, algorithm, mode):
        spec = get_algorithm(algorithm)
        if not spec.supports_mode(mode):
            pytest.skip(f"{algorithm} does not support mode {mode!r}")
        assert _counter_bytes(algorithm, mode, traced=False) == \
            _counter_bytes(algorithm, mode, traced=True)

    def test_golden_sweep_rows_unmoved_by_tracing(self):
        spec = SweepSpec(
            name="obs-golden",
            algorithms=registered_algorithms(),
            families=("square",),
            regimes=("limited",),
            p_values=(4, 16),
            memory_words=2048,
            mode="volume",
            seed=0,
        )
        untraced = tidy_rows([execute_request(r) for r in spec.expand()])
        with tracing():
            traced = tidy_rows([execute_request(r) for r in spec.expand()])
        assert json.dumps(traced, sort_keys=True) == json.dumps(untraced, sort_keys=True)


class TestTracerApi:
    def test_off_by_default_and_context_managed(self):
        assert active_tracer() is None
        with tracing() as tracer:
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing()
        try:
            assert active_tracer() is tracer
        finally:
            assert disable_tracing() is tracer
        assert active_tracer() is None

    def test_span_and_instant_events(self):
        tracer = Tracer()
        with tracer.span("outer", cat="phase", args={"x": 1}):
            tracer.instant("tick", args={"y": 2})
        assert len(tracer) == 2
        [instant] = [e for e in tracer.events if e[3] is None]
        assert instant[0] == "tick"
        [span] = tracer.spans()
        name, cat, ts, dur, args, track = span
        assert (name, cat, args) == ("outer", "phase", {"x": 1})
        assert ts >= 0 and dur >= 0

    def test_spans_filter_by_category(self):
        tracer = Tracer()
        tracer.complete("a", "one", 0, 5)
        tracer.complete("b", "two", 5, 5)
        assert [e[0] for e in tracer.spans("two")] == ["b"]

    def test_machine_attaches_trace_only_when_active(self):
        machine = DistributedMachine(4, memory_words=1024)
        assert machine.trace is None
        with tracing():
            traced_machine = DistributedMachine(4, memory_words=1024)
            assert traced_machine.trace is not None
            assert traced_machine.transport.observer is traced_machine.trace


class TestRoundSpans:
    def test_one_span_per_round_with_counter_deltas(self):
        with tracing() as tracer:
            report = multiply(
                ShapeToken((256, 256)), ShapeToken((256, 256)), 16, 4096,
                mode="volume",
            )
        rounds = tracer.spans("round")
        assert len(rounds) >= 1
        total_words = sum(e[4]["words_posted"] for e in rounds)
        assert total_words == report.total_communicated_words
        assert sum(e[4]["flops"] for e in rounds) == report.total_flops
        for event in rounds:
            args = event[4]
            assert args["mode"] == "volume"
            assert args["hops"] >= 0 and args["resident_peak_words"] >= 0
        assert [e[4]["round"] for e in rounds] == list(range(len(rounds)))

    def test_compressed_replays_still_emit_spans(self):
        scenario = limited_memory_sweep("square", [64], 2048)[0]
        token_a = ShapeToken((scenario.shape.m, scenario.shape.k))
        token_b = ShapeToken((scenario.shape.k, scenario.shape.n))

        def run(compress):
            with tracing() as tracer:
                multiply(
                    token_a, token_b, scenario.p, scenario.memory_words,
                    algorithm="Cannon", mode="volume", compress_rounds=compress,
                )
            return tracer.spans("round")

        plain, compressed = run(False), run(True)
        assert len(compressed) == len(plain) >= 2
        assert any(e[4].get("replayed") for e in compressed)
        assert not any(e[4].get("replayed") for e in plain)
        # Replayed spans carry the cached delta's words, so totals agree.
        assert sum(e[4]["words_posted"] for e in compressed) == \
            sum(e[4]["words_posted"] for e in plain)

    def test_plane_mode_splits_gemm_from_accounting(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((64, 64)), rng.standard_normal((64, 64))
        with tracing() as tracer:
            report = multiply(a, b, 16, 8192, mode="plane")
        assert report.correct
        [accounting] = tracer.spans("phase")
        [gemm] = tracer.spans("gemm")
        assert accounting[0] == "cosma-counter-accounting"
        assert gemm[0] == "cosma-plane-gemm"
        assert gemm[5] == "gemm"  # its own track in the exported trace
        [run_span] = tracer.spans("run")
        assert run_span[0] == "multiply:COSMA"


class TestExport:
    def _traced_run(self):
        with tracing() as tracer:
            multiply(
                ShapeToken((128, 128)), ShapeToken((128, 128)), 16, 4096,
                mode="volume",
            )
        return tracer

    def test_chrome_document_validates(self):
        tracer = self._traced_run()
        document = chrome_trace_document(tracer)
        assert validate_chrome_trace(document) == []
        assert document["traceEvents"], "trace must not be empty"
        phases = {e["ph"] for e in document["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_validator_flags_malformed_events(self):
        document = {"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "ts": -1}]}
        issues = validate_chrome_trace(document)
        assert issues, "negative ts / missing name must be reported"

    def test_written_files_round_trip(self, tmp_path):
        tracer = self._traced_run()
        trace_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        write_chrome_trace(trace_path, tracer)
        write_event_log(events_path, tracer)
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
        lines = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert len(lines) == len(tracer.events)
        assert all("name" in line and "ts_ns" in line for line in lines)
