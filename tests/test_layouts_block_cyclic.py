"""Tests for the ScaLAPACK block-cyclic layout."""

import numpy as np
import pytest

from repro.layouts.block_cyclic import BlockCyclicLayout


@pytest.fixture
def layout():
    return BlockCyclicLayout(rows=10, cols=12, block_rows=2, block_cols=3, grid_rows=2, grid_cols=2)


class TestGeometry:
    def test_tile_counts(self, layout):
        assert layout.tile_rows == 5
        assert layout.tile_cols == 4

    def test_tile_of_element(self, layout):
        assert layout.tile_of_element(0, 0) == (0, 0)
        assert layout.tile_of_element(3, 7) == (1, 2)

    def test_tile_of_element_out_of_bounds(self, layout):
        with pytest.raises(IndexError):
            layout.tile_of_element(10, 0)

    def test_owner_cycles(self, layout):
        assert layout.owner_of_tile(0, 0) == (0, 0)
        assert layout.owner_of_tile(1, 0) == (1, 0)
        assert layout.owner_of_tile(2, 0) == (0, 0)
        assert layout.owner_of_tile(0, 3) == (0, 1)

    def test_owner_index_consistent_with_tiles(self, layout):
        for i in range(layout.rows):
            for j in range(layout.cols):
                ti, tj = layout.tile_of_element(i, j)
                pr, pc = layout.owner_of_tile(ti, tj)
                assert layout.owner_index(i, j) == pr * layout.grid_cols + pc

    def test_tile_range_clipped_at_boundary(self):
        layout = BlockCyclicLayout(rows=5, cols=5, block_rows=2, block_cols=2, grid_rows=2, grid_cols=2)
        (r0, r1), (c0, c1) = layout.tile_range(2, 2)
        assert (r0, r1) == (4, 5)
        assert (c0, c1) == (4, 5)

    def test_tile_range_out_of_bounds(self, layout):
        with pytest.raises(IndexError):
            layout.tile_range(5, 0)


class TestLocalTiles:
    def test_every_tile_owned_exactly_once(self, layout):
        seen = set()
        for pr in range(layout.grid_rows):
            for pc in range(layout.grid_cols):
                for tile in layout.local_tiles(pr, pc):
                    assert tile not in seen
                    seen.add(tile)
        assert len(seen) == layout.tile_rows * layout.tile_cols

    def test_cyclic_assignment(self, layout):
        tiles = layout.local_tiles(0, 0)
        assert (0, 0) in tiles
        assert (2, 2) in tiles
        assert (1, 0) not in tiles


class TestDataMovement:
    def test_split_assemble_roundtrip(self, rng, layout):
        matrix = rng.standard_normal((10, 12))
        per_rank = layout.split(matrix)
        assert np.allclose(layout.assemble(per_rank), matrix)

    def test_split_rejects_wrong_shape(self, layout):
        with pytest.raises(ValueError):
            layout.split(np.zeros((3, 3)))

    def test_assemble_rejects_bad_tile(self, rng, layout):
        per_rank = layout.split(rng.standard_normal((10, 12)))
        rank0 = next(iter(per_rank))
        tile_key = next(iter(per_rank[rank0]))
        per_rank[rank0][tile_key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            layout.assemble(per_rank)

    def test_words_per_owner_sums_to_matrix(self, layout):
        assert sum(layout.words_per_owner()) == 10 * 12

    def test_element_owners_values_in_range(self, layout):
        owners = layout.element_owners()
        assert owners.min() >= 0
        assert owners.max() < layout.num_ranks
