"""Tests for the COSMA decomposition and blocked data ownership."""

import numpy as np
import pytest

from repro.core.decomposition import build_decomposition, distribute_matrices
from repro.core.grid import ProcessorGrid


class TestBuildDecomposition:
    def test_domains_tile_iteration_space(self):
        decomposition = build_decomposition(24, 18, 12, 8, 4096)
        total = sum(d.volume for d in decomposition.domains)
        assert total == 24 * 18 * 12

    def test_number_of_domains_matches_grid(self):
        decomposition = build_decomposition(24, 18, 12, 8, 4096)
        assert len(decomposition.domains) == decomposition.grid.p_used

    def test_idle_ranks_listed(self):
        decomposition = build_decomposition(64, 64, 64, 65, 4096, max_idle_fraction=0.03)
        assert decomposition.p_used + len(decomposition.idle_ranks) == 65

    def test_explicit_grid_respected(self):
        grid = ProcessorGrid(2, 2, 1)
        decomposition = build_decomposition(16, 16, 16, 4, 4096, grid=grid)
        assert decomposition.grid.as_tuple() == (2, 2, 1)

    def test_explicit_grid_too_large_rejected(self):
        with pytest.raises(ValueError):
            build_decomposition(16, 16, 16, 4, 4096, grid=ProcessorGrid(2, 2, 2))

    def test_coords_to_rank_roundtrip(self):
        decomposition = build_decomposition(16, 16, 16, 8, 4096, grid=ProcessorGrid(2, 2, 2))
        seen = set()
        for domain in decomposition.domains:
            rank = decomposition.coords_to_rank(*domain.coords)
            assert rank == domain.rank
            seen.add(rank)
        assert seen == set(range(8))

    def test_fibers_have_expected_length(self):
        decomposition = build_decomposition(16, 16, 16, 8, 4096, grid=ProcessorGrid(2, 2, 2))
        assert len(decomposition.j_fiber(0, 0)) == 2
        assert len(decomposition.i_fiber(0, 0)) == 2
        assert len(decomposition.k_fiber(0, 0)) == 2

    def test_domain_of_unknown_rank(self):
        decomposition = build_decomposition(64, 64, 64, 65, 4096)
        if decomposition.idle_ranks:
            with pytest.raises(KeyError):
                decomposition.domain_of(decomposition.idle_ranks[0])

    def test_step_size_fits_memory(self):
        decomposition = build_decomposition(64, 64, 256, 4, 2048)
        domain = decomposition.domains[0]
        lm = domain.i_range[1] - domain.i_range[0]
        ln = domain.j_range[1] - domain.j_range[0]
        assert lm * ln + (lm + ln) * decomposition.step_size <= 2048 + (lm + ln)

    def test_a_ownership_partitions_k_range(self):
        decomposition = build_decomposition(16, 16, 32, 8, 4096, grid=ProcessorGrid(2, 2, 2))
        for pi in range(2):
            for pk in range(2):
                fiber = decomposition.j_fiber(pi, pk)
                owned = [decomposition.domain_of(r).a_owned_k_range for r in fiber]
                covered = sorted(owned)
                k_range = decomposition.domain_of(fiber[0]).k_range
                assert covered[0][0] == k_range[0]
                assert covered[-1][1] == k_range[1]
                for (lo_a, hi_a), (lo_b, _hi_b) in zip(covered, covered[1:]):
                    assert hi_a == lo_b

    def test_c_owner_unique_per_ij_block(self):
        decomposition = build_decomposition(16, 16, 32, 8, 4096, grid=ProcessorGrid(2, 2, 2))
        owners = [d for d in decomposition.domains if d.owns_c]
        assert len(owners) == 4  # one per (pi, pj) block


class TestDistributeMatrices:
    def test_every_a_element_owned_exactly_once(self, rng):
        m, n, k = 12, 10, 8
        decomposition = build_decomposition(m, n, k, 8, 4096, grid=ProcessorGrid(2, 2, 2))
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        owned = distribute_matrices(decomposition, a, b)
        total_a = sum(pieces["A"].size for pieces in owned.values())
        total_b = sum(pieces["B"].size for pieces in owned.values())
        assert total_a == m * k
        assert total_b == k * n

    def test_owned_pieces_match_global_matrix(self, rng):
        m, n, k = 12, 10, 8
        decomposition = build_decomposition(m, n, k, 4, 4096, grid=ProcessorGrid(2, 2, 1))
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        owned = distribute_matrices(decomposition, a, b)
        reconstructed = np.zeros_like(a)
        for domain in decomposition.domains:
            i0, i1 = domain.i_range
            ak0, ak1 = domain.a_owned_k_range
            reconstructed[i0:i1, ak0:ak1] = owned[domain.rank]["A"]
        assert np.allclose(reconstructed, a)

    def test_shape_mismatch_rejected(self, rng):
        decomposition = build_decomposition(8, 8, 8, 4, 4096)
        with pytest.raises(ValueError):
            distribute_matrices(decomposition, rng.standard_normal((4, 4)), rng.standard_normal((8, 8)))

    def test_max_local_words_reasonable(self):
        decomposition = build_decomposition(32, 32, 32, 8, 4096)
        assert decomposition.max_local_words() > 0
        assert decomposition.max_local_words() <= 32 * 32 * 3
