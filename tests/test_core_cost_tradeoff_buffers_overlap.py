"""Tests for the analytic cost model, I/O-latency trade-off, buffers and overlap."""

import math

import pytest

from repro.core.buffers import fits_in_memory, max_overlap_rounds, plan_buffers
from repro.core.cost_model import (
    communication_reduction_vs_grid,
    cosma_io_cost,
    cosma_latency_cost,
    cosma_local_domain,
    cosma_memory_per_rank,
)
from repro.core.decomposition import build_decomposition
from repro.core.overlap import even_rounds, pipeline_times
from repro.core.tradeoff import io_cost, latency_cost, min_io_point, tradeoff_curve
from repro.pebbling.mmm_bounds import parallel_io_lower_bound


class TestCostModel:
    def test_cost_equals_theorem2_bound(self):
        assert cosma_io_cost(512, 512, 512, 64, 4096) == pytest.approx(
            parallel_io_lower_bound(512, 512, 512, 64, 4096)
        )

    def test_local_domain_limited_regime(self):
        a, b = cosma_local_domain(1024, 1024, 1024, 64, 4096)
        assert a == pytest.approx(64.0)
        assert b == pytest.approx(1024 ** 3 / (64 * 4096))

    def test_local_domain_extra_regime_cubic(self):
        a, b = cosma_local_domain(64, 64, 64, 8, 1 << 20)
        assert a == pytest.approx(b)

    def test_memory_per_rank_within_s(self):
        for p in [16, 64, 256]:
            assert cosma_memory_per_rank(1024, 1024, 1024, p, 4096) <= 4096 * 1.01

    def test_latency_positive(self):
        assert cosma_latency_cost(1024, 1024, 1024, 64, 4096) >= 1.0

    def test_latency_decreases_with_memory(self):
        tight = cosma_latency_cost(1024, 1024, 1024, 64, 4096)
        roomy = cosma_latency_cost(1024, 1024, 1024, 64, 65536)
        assert roomy <= tight

    def test_figure3_cubic_grid_vs_cosma(self):
        """Figure 3: for p=8 and square matrices in the limited-memory regime a
        top-down cubic decomposition moves measurably more data than COSMA's
        bottom-up decomposition (the paper's illustration reports 17%)."""
        n = 512
        p = 8
        s = n * n // 8  # the cubic local output block does not fit in memory
        ratio = communication_reduction_vs_grid(n, n, n, p, s, (2, 2, 2))
        assert 1.1 < ratio < 3.0

    def test_reduction_rejects_oversized_grid(self):
        with pytest.raises(ValueError):
            communication_reduction_vs_grid(64, 64, 64, 4, 1024, (2, 2, 2))


class TestTradeoff:
    def test_io_decreases_with_a(self):
        m = n = k = 512
        p = 64
        assert io_cost(m, n, k, p, 32) < io_cost(m, n, k, p, 8)

    def test_latency_increases_near_sqrt_s(self):
        m = n = k = 512
        p, s = 64, 1024
        assert latency_cost(m, n, k, p, s, 31.9) > latency_cost(m, n, k, p, s, 16)

    def test_latency_infinite_at_sqrt_s(self):
        assert math.isinf(latency_cost(64, 64, 64, 4, 100, 10.0))

    def test_curve_monotone_io(self):
        points = tradeoff_curve(512, 512, 512, 64, 1024, samples=16)
        ios = [p.io_cost for p in points]
        assert all(b <= a + 1e-6 for a, b in zip(ios, ios[1:]))

    def test_min_io_point_matches_cost_model(self):
        m = n = k = 512
        p, s = 64, 1024
        point = min_io_point(m, n, k, p, s)
        assert point.io_cost == pytest.approx(cosma_io_cost(m, n, k, p, s), rel=0.05)

    def test_rejects_nonpositive_a(self):
        with pytest.raises(ValueError):
            io_cost(8, 8, 8, 2, 0.0)


class TestBuffers:
    def test_plan_positive(self):
        decomposition = build_decomposition(64, 64, 64, 8, 4096)
        plan = plan_buffers(decomposition)
        assert plan.a_receive_words > 0
        assert plan.b_receive_words > 0
        assert plan.c_accumulator_words > 0

    def test_double_buffering_doubles_comm_buffers(self):
        decomposition = build_decomposition(64, 64, 64, 8, 4096)
        single = plan_buffers(decomposition, double_buffered=False)
        double = plan_buffers(decomposition, double_buffered=True)
        assert double.communication_words == 2 * single.communication_words
        assert double.c_accumulator_words == single.c_accumulator_words

    def test_single_buffered_plan_fits(self):
        decomposition = build_decomposition(64, 64, 256, 8, 4096)
        assert fits_in_memory(decomposition, double_buffered=False)

    def test_max_overlap_rounds_at_least_base(self):
        decomposition = build_decomposition(64, 64, 256, 8, 4096)
        assert max_overlap_rounds(decomposition) >= decomposition.num_steps


class TestOverlap:
    def test_no_overlap_is_sum(self):
        timeline = pipeline_times([1.0, 1.0], [2.0, 2.0])
        assert timeline.total_no_overlap == pytest.approx(6.0)

    def test_overlap_hides_communication(self):
        timeline = pipeline_times([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])
        # comm_0 + max pairs + comp_last = 1 + 2 + 2 + 2 = 7 < 9.
        assert timeline.total_with_overlap == pytest.approx(7.0)
        assert timeline.total_with_overlap < timeline.total_no_overlap

    def test_overlap_never_better_than_max_component(self):
        timeline = even_rounds(total_comm=10.0, total_comp=4.0, rounds=8)
        assert timeline.total_with_overlap >= max(10.0, 4.0)

    def test_speedup_at_least_one(self):
        timeline = even_rounds(5.0, 5.0, 4)
        assert timeline.speedup >= 1.0

    def test_single_round_no_benefit(self):
        timeline = even_rounds(3.0, 3.0, 1)
        assert timeline.total_with_overlap == pytest.approx(timeline.total_no_overlap)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pipeline_times([1.0], [1.0, 2.0])

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            pipeline_times([-1.0], [1.0])

    def test_zero_rounds_rejected(self):
        with pytest.raises(ValueError):
            even_rounds(1.0, 1.0, 0)

    def test_overlap_efficiency_bounded(self):
        timeline = even_rounds(6.0, 6.0, 6)
        assert 0.0 <= timeline.overlap_efficiency <= 1.0
