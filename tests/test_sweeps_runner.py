"""Tests for the campaign runner: parallel determinism and failure capture."""

import pytest

import repro.experiments.harness as harness
from repro.experiments.harness import AlgorithmRun, RunFailure, run_algorithm_safe, sweep
from repro.sweeps.aggregate import rows_to_json, runs_from_records, scenario_summary_table, tidy_rows
from repro.sweeps.runner import RetryPolicy, predicted_working_set_words, run_campaign
from repro.sweeps.spec import SweepSpec, spec_from_scenarios
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import square_shape


@pytest.fixture
def spec() -> SweepSpec:
    return SweepSpec(
        name="runner-test",
        algorithms=("COSMA", "ScaLAPACK", "CTF", "CARMA"),
        families=("square", "largeK"),
        regimes=("limited",),
        p_values=(4, 9),
        memory_words=1024,
        mode="volume",
    )


def _explode(a, b, scenario, machine):
    raise RuntimeError(f"boom on {scenario.name}")


@pytest.fixture
def exploding_algorithm(monkeypatch):
    monkeypatch.setitem(harness.ALGORITHMS, "Explode", _explode)
    return "Explode"


class TestDeterminism:
    def test_parallel_rows_byte_identical_to_serial(self, tmp_path, spec):
        """A 2-job campaign must aggregate exactly like the serial one."""
        serial = run_campaign(spec, store=tmp_path / "serial", jobs=1)
        parallel = run_campaign(spec, store=tmp_path / "parallel", jobs=2)
        assert serial.executed == parallel.executed == len(spec.expand())
        assert rows_to_json(tidy_rows(serial.records)) == rows_to_json(tidy_rows(parallel.records))

    def test_records_follow_expansion_order(self, tmp_path, spec):
        result = run_campaign(spec, store=tmp_path / "store", jobs=2)
        expected = [request.key for request in spec.expand()]
        assert [record["key"] for record in result.records] == expected

    def test_parallel_campaign_resumes_serial_store(self, tmp_path, spec):
        store_path = tmp_path / "store"
        run_campaign(spec, store=store_path, jobs=1)
        warm = run_campaign(spec, store=store_path, jobs=2)
        assert (warm.executed, warm.cached) == (0, len(spec.expand()))


class TestCampaignResult:
    def test_runs_rebuild_algorithm_runs(self, tmp_path, spec):
        result = run_campaign(spec, store=tmp_path / "store", jobs=1)
        runs = result.runs()
        assert len(runs) == len(spec.expand())
        assert all(isinstance(run, AlgorithmRun) for run in runs)
        assert runs_from_records(result.records) == runs

    def test_progress_callback_sees_every_record(self, tmp_path, spec):
        seen: list[tuple[str, bool]] = []
        run_campaign(spec, store=tmp_path / "store", jobs=1,
                     progress=lambda record, cached: seen.append((record["key"], cached)))
        assert len(seen) == len(spec.expand())
        assert all(not cached for _, cached in seen)
        seen.clear()
        run_campaign(spec, store=tmp_path / "store", jobs=1,
                     progress=lambda record, cached: seen.append((record["key"], cached)))
        assert all(cached for _, cached in seen)

    def test_jobs_must_be_positive(self, tmp_path, spec):
        with pytest.raises(ValueError):
            run_campaign(spec, store=tmp_path / "store", jobs=0)

    def test_duplicate_requests_counted_once(self, tmp_path):
        dup = SweepSpec(name="dup", algorithms=("COSMA", "COSMA"), families=("square",),
                        regimes=("limited",), p_values=(4,), memory_words=1024, mode="volume")
        store_path = tmp_path / "store"
        cold = run_campaign(dup, store=store_path, jobs=1)
        assert (cold.executed, cold.cached, len(cold.records)) == (1, 0, 1)
        warm = run_campaign(dup, store=store_path, jobs=1)
        assert (warm.executed, warm.cached, len(warm.records)) == (0, 1, 1)


class TestFailureCapture:
    def test_run_algorithm_safe_returns_structured_failure(self, exploding_algorithm):
        scenario = Scenario(name="s", shape=square_shape(16), p=4, memory_words=1024, regime="strong")
        outcome = run_algorithm_safe(exploding_algorithm, scenario, mode="volume")
        assert isinstance(outcome, RunFailure)
        assert outcome.error_type == "RuntimeError"
        assert "boom on s" in outcome.error_message
        assert not outcome.correct

    def test_run_algorithm_safe_still_rejects_unknown_names(self):
        scenario = Scenario(name="s", shape=square_shape(16), p=4, memory_words=1024, regime="strong")
        with pytest.raises(KeyError):
            run_algorithm_safe("MAGMA", scenario)

    def test_sweep_capture_keeps_going(self, exploding_algorithm):
        scenarios = [Scenario(name=f"s{p}", shape=square_shape(16), p=p,
                              memory_words=1024, regime="strong") for p in (2, 4)]
        outcomes = sweep(scenarios, algorithms=("COSMA", exploding_algorithm),
                         mode="volume", on_error="capture")
        assert len(outcomes) == 4
        assert sum(isinstance(o, RunFailure) for o in outcomes) == 2
        with pytest.raises(RuntimeError):
            sweep(scenarios, algorithms=(exploding_algorithm,), mode="volume")
        with pytest.raises(ValueError):
            sweep(scenarios, algorithms=("COSMA",), on_error="ignore")

    def test_campaign_persists_failures_and_completes(self, tmp_path, exploding_algorithm):
        scenarios = [Scenario(name=f"s{p}", shape=square_shape(16), p=p,
                              memory_words=1024, regime="strong") for p in (2, 4)]
        spec = spec_from_scenarios(scenarios, algorithms=("COSMA", exploding_algorithm), mode="volume")
        result = run_campaign(spec, store=tmp_path / "store", jobs=1)
        assert result.executed == 4
        assert result.failed == 2
        assert len(result.ok_records) == 2
        for record in result.failed_records:
            assert record["error"]["type"] == "RuntimeError"

        rows = tidy_rows(result.records)
        failed_rows = [row for row in rows if row["status"] == "failed"]
        assert len(failed_rows) == 2
        assert all(row["error_type"] == "RuntimeError" for row in failed_rows)
        assert "failed" in scenario_summary_table(rows)

        # Failed records are cached too: the rerun executes nothing.
        warm = run_campaign(spec, store=tmp_path / "store", jobs=1)
        assert (warm.executed, warm.cached, warm.failed) == (0, 4, 2)

    def test_retry_failures_reexecutes_only_failed_records(self, tmp_path, exploding_algorithm,
                                                           monkeypatch):
        scenarios = [Scenario(name=f"s{p}", shape=square_shape(16), p=p,
                              memory_words=1024, regime="strong") for p in (2, 4)]
        spec = spec_from_scenarios(scenarios, algorithms=("COSMA", exploding_algorithm), mode="volume")
        run_campaign(spec, store=tmp_path / "store", jobs=1)
        # The environment recovers: the algorithm stops exploding.
        monkeypatch.setitem(harness.ALGORITHMS, exploding_algorithm,
                            harness.ALGORITHMS["COSMA"])
        retried = run_campaign(spec, store=tmp_path / "store", jobs=1, retry_failures=True)
        assert (retried.executed, retried.cached, retried.failed) == (2, 2, 0)


class TestCompressedCampaigns:
    def test_compressed_rows_byte_identical_to_plain(self, tmp_path, spec):
        """compress_rounds is a pure speed knob: records and rows match."""
        plain = run_campaign(spec, store=tmp_path / "plain", jobs=1)
        compressed = run_campaign(
            spec, store=tmp_path / "compressed", jobs=1, compress_rounds=True
        )
        assert compressed.executed == plain.executed
        assert rows_to_json(tidy_rows(compressed.records)) == rows_to_json(tidy_rows(plain.records))

    def test_compressed_campaign_resumes_plain_store(self, tmp_path, spec):
        """Same keys across the flag, so a plain store answers a compressed rerun."""
        plain = run_campaign(spec, store=tmp_path / "store", jobs=1)
        rerun = run_campaign(
            spec, store=tmp_path / "store", jobs=1, compress_rounds=True
        )
        assert rerun.executed == 0
        assert rerun.cached == plain.executed + plain.cached


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.1, backoff_factor=2.0,
                             max_backoff_s=0.3, jitter_s=0.05)
        first = [policy.backoff("some-key", attempt) for attempt in (1, 2, 3, 4)]
        second = [policy.backoff("some-key", attempt) for attempt in (1, 2, 3, 4)]
        assert first == second  # SHA-256 jitter, not random
        assert all(0.1 <= first[0] <= 0.15 for _ in [0])
        assert all(delay <= 0.3 + 0.05 for delay in first)
        assert policy.backoff("other-key", 1) != first[0]

    def test_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable("TransientFault")
        assert policy.is_retryable("WorkerCrash")
        assert policy.is_retryable("RunTimeout")
        assert not policy.is_retryable("RuntimeError")
        assert not policy.is_retryable("InfeasiblePlan")
        assert RetryPolicy(retry_all=True).is_retryable("RuntimeError")
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_deterministic_failures_quarantine_without_retry(self, tmp_path, exploding_algorithm):
        """A RuntimeError is not retryable: one attempt, full taxonomy."""
        scenarios = [Scenario(name="s2", shape=square_shape(16), p=2,
                              memory_words=1024, regime="strong")]
        spec = spec_from_scenarios(scenarios, algorithms=(exploding_algorithm,), mode="volume")
        result = run_campaign(spec, store=tmp_path / "store", jobs=1)
        assert (result.retried, result.quarantined) == (0, 1)
        error = result.failed_records[0]["error"]
        assert error["type"] == "RuntimeError"
        assert error["attempts"] == 1
        assert error["retryable"] is False
        assert error["exit_signal"] is None


class TestMemoryBudget:
    def test_oversized_runs_refused_with_structured_record(self, tmp_path, spec):
        requests = spec.expand()
        budgets = sorted({predicted_working_set_words(r) for r in requests})
        assert len(budgets) > 1, "the grid must span several working-set sizes"
        budget = budgets[0]  # only the smallest runs fit
        result = run_campaign(spec, store=tmp_path / "store", jobs=1,
                              memory_budget_words=budget)
        assert result.refused > 0
        assert result.executed + result.refused == len(requests)
        refused = [r for r in result.records
                   if r["status"] == "failed" and r["error"]["type"] == "MemoryBudgetExceeded"]
        assert len(refused) == result.refused
        assert all(not r["error"]["retryable"] for r in refused)

    def test_oversized_but_fitting_runs_serialize_not_refuse(self, tmp_path, spec):
        """Runs over budget/jobs but under budget execute (one at a time)
        and still produce records byte-identical to a serial campaign."""
        requests = spec.expand()
        budget = max(predicted_working_set_words(r) for r in requests)
        baseline = run_campaign(spec, store=tmp_path / "clean", jobs=1)
        gated = run_campaign(spec, store=tmp_path / "gated", jobs=2,
                             memory_budget_words=budget)
        assert gated.refused == 0
        assert gated.executed == len(requests)
        assert rows_to_json(tidy_rows(gated.records)) == rows_to_json(tidy_rows(baseline.records))

    def test_budget_refusals_are_cached(self, tmp_path, spec):
        requests = spec.expand()
        budget = min(predicted_working_set_words(r) for r in requests)
        run_campaign(spec, store=tmp_path / "store", jobs=1, memory_budget_words=budget)
        # Rerun without the budget: refused records re-execute only via
        # retry_failures (they are ordinary failed records).
        warm = run_campaign(spec, store=tmp_path / "store", jobs=1)
        assert warm.executed == 0
        healed = run_campaign(spec, store=tmp_path / "store", jobs=1, retry_failures=True)
        assert healed.failed == 0
        assert healed.executed > 0
