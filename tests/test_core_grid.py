"""Tests for processor-grid fitting (FitRanks, section 7.1)."""

import pytest

from repro.core.grid import (
    ProcessorGrid,
    candidate_grids,
    communication_volume_per_rank,
    computation_per_rank,
    fit_ranks,
)


class TestProcessorGrid:
    def test_p_used(self):
        assert ProcessorGrid(2, 3, 4).p_used == 24

    def test_local_extents_round_up(self):
        grid = ProcessorGrid(3, 2, 1)
        assert grid.local_extents(10, 10, 7) == (4, 5, 7)

    def test_iterable(self):
        pm, pn, pk = ProcessorGrid(2, 3, 4)
        assert (pm, pn, pk) == (2, 3, 4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ProcessorGrid(0, 1, 1)


class TestCostModel:
    def test_no_communication_on_single_rank(self):
        grid = ProcessorGrid(1, 1, 1)
        assert communication_volume_per_rank(grid, 64, 64, 64) == 0.0

    def test_2d_grid_has_no_c_reduction(self):
        grid = ProcessorGrid(4, 4, 1)
        volume = communication_volume_per_rank(grid, 64, 64, 64)
        # Only A and B panels are fetched.
        assert volume == pytest.approx(16 * 64 * 3 / 4 * 2)

    def test_k_parallel_grid_pays_for_reduction(self):
        flat = ProcessorGrid(4, 4, 1)
        deep = ProcessorGrid(4, 4, 2)
        m = n = k = 64
        assert communication_volume_per_rank(deep, m, n, k) != communication_volume_per_rank(
            flat, m, n, k
        )

    def test_computation_per_rank(self):
        grid = ProcessorGrid(2, 2, 2)
        assert computation_per_rank(grid, 8, 8, 8) == 4 * 4 * 4


class TestCandidateGrids:
    def test_respects_dimension_caps(self):
        grids = candidate_grids(8, m=2, n=100, k=100)
        assert all(g.pm <= 2 for g in grids)

    def test_all_use_exact_p(self):
        for grid in candidate_grids(12, 100, 100, 100):
            assert grid.p_used == 12

    def test_empty_when_p_exceeds_all_dims(self):
        assert candidate_grids(1000, 2, 2, 2) == []


class TestFitRanks:
    def test_perfect_cube(self):
        fit = fit_ranks(64, 64, 64, 64, max_idle_fraction=0.0)
        assert fit.grid.p_used == 64
        assert fit.idle_ranks == 0

    def test_figure5_square_65_ranks_drops_one(self):
        """Figure 5: with p=65 and square matrices, dropping one rank to get a
        4x4x4 grid cuts communication by roughly a third."""
        fit = fit_ranks(4096, 4096, 4096, 65, max_idle_fraction=0.03)
        assert fit.grid.as_tuple() == (4, 4, 4)
        assert fit.idle_ranks == 1
        # Compare against the best 65-rank grid.
        best_65 = min(
            (communication_volume_per_rank(g, 4096, 4096, 4096) for g in candidate_grids(65, 4096, 4096, 4096)),
        )
        reduction = 1.0 - fit.communication_per_rank / best_65
        assert reduction > 0.25

    def test_no_drop_allowed_uses_all_ranks(self):
        fit = fit_ranks(4096, 4096, 4096, 65, max_idle_fraction=0.0)
        assert fit.grid.p_used == 65

    def test_idle_fraction_respected(self):
        fit = fit_ranks(512, 512, 512, 100, max_idle_fraction=0.05)
        assert fit.idle_fraction <= 0.05 + 1e-9

    def test_unfavorable_prime_p(self):
        """Section 9: adding one core to a nice decomposition should not hurt.

        With p=9217 = 13 x 709 the only exact grids are terrible; the fitter
        must fall back to (nearly) the p=9216 decomposition.
        """
        fit_nice = fit_ranks(512, 512, 512, 128, max_idle_fraction=0.03)
        fit_prime = fit_ranks(512, 512, 512, 131, max_idle_fraction=0.03)  # 131 is prime
        assert fit_prime.communication_per_rank <= fit_nice.communication_per_rank * 1.10

    def test_tall_matrix_parallelizes_along_k(self):
        # m = n = 32, k = 16384: the only way to use 64 ranks effectively is to
        # split the k dimension.
        fit = fit_ranks(32, 32, 16384, 64, max_idle_fraction=0.03)
        assert fit.grid.pk > 1

    def test_flat_matrix_avoids_k_split(self):
        # m = n = 4096, k = 16: splitting k would force a pointless C reduction.
        fit = fit_ranks(4096, 4096, 16, 64, max_idle_fraction=0.03)
        assert fit.grid.pk == 1

    def test_single_rank_fallback(self):
        fit = fit_ranks(2, 2, 2, 1000, max_idle_fraction=0.0)
        assert fit.grid.p_used <= 8

    def test_communication_decreases_or_equal_with_idle_allowance(self):
        strict = fit_ranks(300, 300, 300, 97, max_idle_fraction=0.0)
        relaxed = fit_ranks(300, 300, 300, 97, max_idle_fraction=0.05)
        assert relaxed.communication_per_rank <= strict.communication_per_rank

    def test_rejects_bad_idle_fraction(self):
        with pytest.raises(ValueError):
            fit_ranks(8, 8, 8, 8, max_idle_fraction=1.5)
