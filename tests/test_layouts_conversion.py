"""Tests for layout redistribution (blocked <-> block-cyclic)."""

import numpy as np
import pytest

from repro.layouts.block_cyclic import BlockCyclicLayout
from repro.layouts.blocked import BlockedLayout
from repro.layouts.conversion import assemble_from_locals, redistribute, redistribution_volume
from repro.machine.simulator import DistributedMachine


class TestRedistributionVolume:
    def test_identical_layouts_need_no_movement(self):
        layout = BlockedLayout(8, 8, 2, 2)
        assert redistribution_volume(layout, layout) == 0

    def test_mismatched_matrices_rejected(self):
        a = BlockedLayout(8, 8, 2, 2)
        b = BlockedLayout(6, 8, 2, 2)
        with pytest.raises(ValueError):
            redistribution_volume(a, b)

    def test_volume_bounded_by_matrix_size(self):
        blocked = BlockedLayout(12, 12, 2, 2)
        cyclic = BlockCyclicLayout(12, 12, 2, 2, 2, 2)
        volume = redistribution_volume(blocked, cyclic)
        assert 0 <= volume <= 12 * 12

    def test_volume_counts_owner_changes_exactly(self):
        blocked = BlockedLayout(4, 4, 2, 2)
        cyclic = BlockCyclicLayout(4, 4, 1, 1, 2, 2)
        expected = int(np.count_nonzero(blocked.element_owners() != cyclic.element_owners()))
        assert redistribution_volume(blocked, cyclic) == expected


class TestRedistribute:
    def test_roundtrip_preserves_matrix(self, rng):
        matrix = rng.standard_normal((12, 10))
        src = BlockCyclicLayout(12, 10, 3, 2, 2, 2)
        dst = BlockedLayout(12, 10, 2, 2)
        machine = DistributedMachine(4)
        local = redistribute(machine, matrix, src, dst)
        assert np.allclose(assemble_from_locals(local, dst), matrix)

    def test_measured_volume_matches_prediction(self, rng):
        matrix = rng.standard_normal((12, 10))
        src = BlockCyclicLayout(12, 10, 3, 2, 2, 2)
        dst = BlockedLayout(12, 10, 2, 2)
        machine = DistributedMachine(4)
        redistribute(machine, matrix, src, dst)
        assert machine.counters.total_words_sent == redistribution_volume(src, dst)

    def test_same_layout_no_communication(self, rng):
        matrix = rng.standard_normal((8, 8))
        layout = BlockedLayout(8, 8, 2, 2)
        machine = DistributedMachine(4)
        redistribute(machine, matrix, layout, layout)
        assert machine.counters.total_words_sent == 0

    def test_rejects_wrong_matrix_shape(self):
        layout = BlockedLayout(8, 8, 2, 2)
        machine = DistributedMachine(4)
        with pytest.raises(ValueError):
            redistribute(machine, np.zeros((4, 4)), layout, layout)

    def test_rejects_too_few_ranks(self, rng):
        matrix = rng.standard_normal((8, 8))
        layout = BlockedLayout(8, 8, 2, 2)
        machine = DistributedMachine(4)
        with pytest.raises(ValueError):
            redistribute(machine, matrix, layout, layout, src_ranks=[0, 1])

    def test_custom_rank_mapping(self, rng):
        matrix = rng.standard_normal((8, 8))
        src = BlockedLayout(8, 8, 2, 2)
        dst = BlockCyclicLayout(8, 8, 2, 2, 2, 2)
        machine = DistributedMachine(8)
        local = redistribute(machine, matrix, src, dst, src_ranks=[0, 1, 2, 3], dst_ranks=[4, 5, 6, 7])
        assert np.allclose(assemble_from_locals(local, dst, dst_ranks=[4, 5, 6, 7]), matrix)
        # All data moves because source and destination rank sets are disjoint.
        assert machine.counters.total_words_sent == 64
