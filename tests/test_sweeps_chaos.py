"""Deterministic chaos suite: campaigns under injected faults (``make chaos``).

The headline invariant (ISSUE 6 / ROADMAP fault-tolerance): with a seeded
:class:`~repro.sweeps.faults.FaultPlan` injecting worker crashes, deadline
trips, transient errors and torn/duplicated store writes at >= 20% of runs,
``run_campaign`` completes without hanging, every exhausted run is a
structured quarantined record, and the surviving ok-records are
byte-identical to a fault-free campaign over the same spec.

When ``REPRO_CHAOS_REPORT`` is set, the chaos tests write a JSON quarantine
report there *before* asserting, so CI can upload the evidence when the
invariant breaks.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.sweeps.faults import FaultPlan, TransientFault
from repro.sweeps.runner import RetryPolicy, run_campaign
from repro.sweeps.spec import SweepSpec
from repro.sweeps.store import ResultStore

#: Fast-converging retry policy for tests (same semantics as the default).
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, jitter_s=0.005)


@pytest.fixture
def spec() -> SweepSpec:
    return SweepSpec(
        name="chaos-test",
        algorithms=("COSMA", "ScaLAPACK", "CTF"),
        families=("square",),
        regimes=("limited",),
        p_values=(4, 9, 16, 25),
        memory_words=1024,
        mode="volume",
    )


def _ok_bytes(records) -> str:
    return json.dumps(
        [r for r in records if r.get("status") == "ok"], sort_keys=True,
    )


def _write_chaos_report(records, result) -> None:
    """Persist the quarantine report for CI artifact upload (before asserts)."""
    path = os.environ.get("REPRO_CHAOS_REPORT")
    if not path:
        return
    report = {
        "executed": result.executed,
        "retried": result.retried,
        "quarantined": result.quarantined,
        "metrics": result.metrics,
        "failed_records": [
            {"key": r["key"], "error": r["error"]}
            for r in records
            if r.get("status") == "failed"
        ],
    }
    existing = []
    report_file = Path(path)
    if report_file.exists():
        existing = json.loads(report_file.read_text())
    existing.append(report)
    report_file.write_text(json.dumps(existing, indent=2))


class TestFaultPlanDeterminism:
    def test_decisions_are_pure_functions_of_seed_and_key(self):
        plan = FaultPlan(seed=7, crash_rate=0.2, hang_rate=0.2, transient_rate=0.2,
                         torn_write_rate=0.2, duplicate_write_rate=0.2)
        keys = [f"key-{i}" for i in range(50)]
        first = [(plan.worker_fault(k), plan.store_fault(k)) for k in keys]
        second = [(plan.worker_fault(k), plan.store_fault(k)) for k in keys]
        assert first == second
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_rates_roughly_respected(self):
        plan = FaultPlan(seed=0, crash_rate=0.5)
        keys = [f"key-{i}" for i in range(400)]
        fraction = plan.faulted_fraction(keys)
        assert 0.35 < fraction < 0.65

    def test_faults_stop_after_faulted_attempts(self):
        plan = FaultPlan(seed=0, transient_rate=1.0, faulted_attempts=2)
        assert plan.worker_fault("k", 1) == "transient"
        assert plan.worker_fault("k", 2) == "transient"
        assert plan.worker_fault("k", 3) is None
        with pytest.raises(TransientFault):
            plan.inject("k", 1)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=0.7, hang_rate=0.7)


class TestChaosInvariant:
    def test_faulted_campaign_converges_to_fault_free_records(self, tmp_path, spec):
        """The headline chaos invariant (acceptance criterion 3)."""
        baseline = run_campaign(spec, store=tmp_path / "clean", jobs=1)
        plan = FaultPlan(
            seed=3, crash_rate=0.12, hang_rate=0.08, transient_rate=0.12,
            torn_write_rate=0.08, duplicate_write_rate=0.08, hang_s=8.0,
        )
        keys = [request.key for request in spec.expand()]
        assert plan.faulted_fraction(keys) >= 0.2, "chaos run must fault >= 20% of runs"

        chaos_store = ResultStore(tmp_path / "chaos")
        result = run_campaign(
            spec, store=chaos_store, jobs=2, timeout_s=1.0,
            faults=plan, retry=FAST_RETRY,
        )
        _write_chaos_report(result.records, result)

        # Faults fire on the first attempt only, so every run converges: no
        # quarantine, and the ok-records are byte-identical to fault-free.
        assert result.executed == len(keys)
        assert result.quarantined == 0 and result.failed == 0
        assert result.retried > 0, "the plan must actually have injected worker faults"
        assert _ok_bytes(result.records) == _ok_bytes(baseline.records)

        # Store-side faults left torn/duplicate debris; compaction restores
        # a clean file without changing any record.
        report = chaos_store.verify()
        assert report.torn_lines + report.duplicate_lines > 0
        before = {key: chaos_store.get(key) for key in chaos_store.keys()}
        dropped = chaos_store.compact()
        assert dropped > 0
        after_verify = chaos_store.verify()
        assert after_verify.clean and after_verify.live_records == len(keys)
        assert {key: chaos_store.get(key) for key in chaos_store.keys()} == before

    def test_sigkilled_worker_quarantined_with_taxonomy(self, tmp_path, spec):
        """Acceptance criterion 4: SIGKILL mid-run neither hangs the campaign
        nor loses other workers' records; the exhausted run's record carries
        attempts / exit_signal."""
        baseline = run_campaign(spec, store=tmp_path / "clean", jobs=1)
        plan = FaultPlan(seed=3, crash_rate=0.3, faulted_attempts=99)
        keys = [request.key for request in spec.expand()]
        doomed = {key for key in keys if plan.worker_fault(key) == "crash"}
        assert doomed, "seed must doom at least one run"

        result = run_campaign(
            spec, store=tmp_path / "chaos", jobs=2, faults=plan, retry=FAST_RETRY,
        )
        _write_chaos_report(result.records, result)

        assert result.quarantined == len(doomed)
        for record in result.records:
            if record["key"] not in doomed:
                continue
            error = record["error"]
            assert record["status"] == "failed"
            assert error["type"] == "WorkerCrash"
            assert error["attempts"] == FAST_RETRY.max_attempts
            assert error["exit_signal"] == int(signal.SIGKILL)
            assert error["retryable"] is True
            assert error["duration_s"] >= 0.0
        # Every non-doomed run survived, byte-identical to fault-free.
        surviving = [r for r in baseline.records if r["key"] not in doomed]
        assert _ok_bytes(result.records) == _ok_bytes(surviving)

    def test_deadline_trip_recovers_on_retry(self, tmp_path):
        spec = SweepSpec(name="hang-test", algorithms=("COSMA",),
                         p_values=(4, 9, 16, 25), memory_words=1024)
        plan = FaultPlan(seed=0, hang_rate=1.0, hang_s=30.0)
        result = run_campaign(
            spec, store=tmp_path / "store", jobs=2, timeout_s=0.5,
            faults=plan, retry=FAST_RETRY,
        )
        assert result.failed == 0
        assert result.retried == len(spec.expand())

    def test_transient_faults_recover_in_process_too(self, tmp_path):
        """jobs=1 without a deadline still executes supervised when a fault
        plan is attached, and transient errors retry to success."""
        spec = SweepSpec(name="transient-test", algorithms=("COSMA",),
                         p_values=(4, 9), memory_words=1024)
        plan = FaultPlan(seed=0, transient_rate=1.0)
        result = run_campaign(
            spec, store=tmp_path / "store", jobs=1, faults=plan, retry=FAST_RETRY,
        )
        assert result.failed == 0
        assert result.retried == len(spec.expand())


class TestConcurrentCampaigns:
    def test_two_campaigns_one_store_no_duplicate_execution(self, tmp_path, spec):
        """Acceptance criterion 5: concurrent campaigns sharing one store
        split the keys via leases; verify reports the store clean."""
        script = (
            "import json, sys\n"
            "from repro.sweeps.runner import run_campaign\n"
            "from repro.sweeps.spec import SweepSpec\n"
            "spec = SweepSpec(name='chaos-test', algorithms=('COSMA', 'ScaLAPACK', 'CTF'),"
            " families=('square',), regimes=('limited',), p_values=(4, 9, 16, 25),"
            " memory_words=1024, mode='volume')\n"
            "result = run_campaign(spec, store=sys.argv[1], jobs=2, lease_ttl_s=10.0)\n"
            "print(json.dumps({'executed': result.executed, 'cached': result.cached,"
            " 'deferred': result.deferred, 'failed': result.failed}))\n"
        )
        store_path = tmp_path / "shared"
        env = dict(os.environ, PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(store_path)],
                stdout=subprocess.PIPE, text=True, env=env,
            )
            for _ in range(2)
        ]
        outcomes = []
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0, out
            outcomes.append(json.loads(out.strip().splitlines()[-1]))

        total = len(spec.expand())
        executed = sum(o["executed"] for o in outcomes)
        resolved = sum(o["executed"] + o["cached"] + o["deferred"] for o in outcomes)
        assert executed <= total, "leased keys must never execute twice"
        assert resolved == 2 * total
        assert all(o["failed"] == 0 for o in outcomes)

        store = ResultStore(store_path)
        report = store.verify()
        assert report.clean, report.summary()
        assert report.live_records == total
        assert store.live_leases() == {}

    def test_lapsed_lease_is_reclaimed(self, tmp_path):
        """A crashed campaign's leases expire; a later campaign takes over."""
        spec = SweepSpec(name="lease-test", algorithms=("COSMA",),
                         p_values=(4, 9), memory_words=1024)
        store = ResultStore(tmp_path / "store")
        keys = [request.key for request in spec.expand()]
        granted = store.acquire_leases(keys, owner="ghost-campaign", ttl_s=0.5)
        assert granted == set(keys)
        result = run_campaign(spec, store=store, jobs=1, lease_ttl_s=0.5)
        assert result.executed + result.deferred == len(keys)
        assert result.failed == 0
        assert store.live_leases() == {}


class TestCancellation:
    def test_interrupt_mid_campaign_drains_and_reraises(self, tmp_path, spec):
        """Satellite: an interrupt during the jobs>1 branch must persist
        already-finished records to the store and re-raise."""
        seen = []

        def interrupt_after_three(record, from_cache):
            seen.append(record)
            if len(seen) == 3:
                raise KeyboardInterrupt

        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, store=store, jobs=2, progress=interrupt_after_three)
        # Every record reported before the interrupt is durably stored --
        # reloading from disk (not the in-memory index) must see them all.
        reloaded = ResultStore(tmp_path / "store")
        for record in seen:
            assert reloaded.get(record["key"]) == record
        assert reloaded.verify().torn_lines == 0
        # The campaign's leases were released on the way out.
        assert store.live_leases() == {}
        # And the interrupted campaign resumes instead of starting over.
        resumed = run_campaign(spec, store=store, jobs=2)
        assert resumed.cached >= len(seen)
        assert resumed.cached + resumed.executed == len(spec.expand())

    def test_sigterm_drains_to_store_and_exits(self, tmp_path):
        """SIGTERM behaves like KeyboardInterrupt: drain, release, re-raise."""
        script = (
            "import sys\n"
            "from repro.sweeps.faults import FaultPlan\n"
            "from repro.sweeps.runner import run_campaign\n"
            "from repro.sweeps.spec import SweepSpec\n"
            "spec = SweepSpec(name='term-test', algorithms=('COSMA', 'ScaLAPACK'),"
            " p_values=(4, 9, 16, 25), memory_words=1024)\n"
            "plan = FaultPlan(seed=0, hang_rate=1.0, hang_s=0.4, faulted_attempts=99)\n"
            "print('READY', flush=True)\n"
            "try:\n"
            "    run_campaign(spec, store=sys.argv[1], jobs=2, faults=plan)\n"
            "except KeyboardInterrupt:\n"
            "    sys.exit(17)\n"
            "sys.exit(0)\n"
        )
        store_path = tmp_path / "store"
        env = dict(os.environ, PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(store_path)],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        assert proc.stdout.readline().strip() == "READY"
        results_file = store_path / "results.jsonl"
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if results_file.exists() and results_file.read_bytes().count(b"\n") >= 2:
                break
            time.sleep(0.05)
        else:
            proc.kill()
            pytest.fail("campaign never stored its first records")
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 17, "SIGTERM must re-raise after draining"
        store = ResultStore(store_path)
        assert len(store) >= 2
        assert store.verify().torn_lines == 0
        assert store.live_leases() == {}
