"""Tests for the blocked (COSMA) layout."""

import numpy as np
import pytest

from repro.layouts.blocked import BlockedLayout


class TestConstruction:
    def test_rejects_grid_larger_than_matrix(self):
        with pytest.raises(ValueError):
            BlockedLayout(rows=2, cols=8, grid_rows=3, grid_cols=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BlockedLayout(rows=0, cols=4, grid_rows=1, grid_cols=1)

    def test_num_blocks(self):
        layout = BlockedLayout(10, 12, 2, 3)
        assert layout.num_blocks == 6


class TestGeometry:
    def test_row_ranges_cover_matrix(self):
        layout = BlockedLayout(10, 12, 3, 4)
        ranges = layout.row_ranges()
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10

    def test_even_split(self):
        layout = BlockedLayout(8, 8, 2, 2)
        assert layout.block_shape(0, 0) == (4, 4)
        assert layout.block_shape(1, 1) == (4, 4)

    def test_uneven_split_front_loaded(self):
        layout = BlockedLayout(10, 10, 3, 3)
        assert layout.block_shape(0, 0) == (4, 4)
        assert layout.block_shape(2, 2) == (3, 3)

    def test_block_of_element(self):
        layout = BlockedLayout(10, 10, 2, 2)
        assert layout.block_of_element(0, 0) == (0, 0)
        assert layout.block_of_element(9, 9) == (1, 1)
        assert layout.block_of_element(4, 5) == (0, 1)

    def test_block_of_element_out_of_bounds(self):
        layout = BlockedLayout(4, 4, 2, 2)
        with pytest.raises(IndexError):
            layout.block_of_element(4, 0)

    def test_owner_index_row_major(self):
        layout = BlockedLayout(4, 4, 2, 2)
        assert layout.owner_index(0, 0) == 0
        assert layout.owner_index(0, 3) == 1
        assert layout.owner_index(3, 0) == 2
        assert layout.owner_index(3, 3) == 3


class TestDataMovement:
    def test_split_assemble_roundtrip(self, rng):
        matrix = rng.standard_normal((11, 7))
        layout = BlockedLayout(11, 7, 3, 2)
        blocks = layout.split(matrix)
        assert np.allclose(layout.assemble(blocks), matrix)

    def test_split_produces_all_blocks(self):
        layout = BlockedLayout(6, 6, 2, 3)
        blocks = layout.split(np.zeros((6, 6)))
        assert set(blocks) == {(i, j) for i in range(2) for j in range(3)}

    def test_extract_block_matches_slice(self, rng):
        matrix = rng.standard_normal((9, 9))
        layout = BlockedLayout(9, 9, 3, 3)
        assert np.allclose(layout.extract_block(matrix, 1, 2), matrix[3:6, 6:9])

    def test_assemble_rejects_wrong_shape(self):
        layout = BlockedLayout(6, 6, 2, 2)
        blocks = layout.split(np.zeros((6, 6)))
        blocks[(0, 0)] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            layout.assemble(blocks)

    def test_split_rejects_wrong_matrix(self):
        layout = BlockedLayout(6, 6, 2, 2)
        with pytest.raises(ValueError):
            layout.split(np.zeros((5, 6)))


class TestOwners:
    def test_element_owners_shape(self):
        layout = BlockedLayout(7, 5, 2, 2)
        owners = layout.element_owners()
        assert owners.shape == (7, 5)

    def test_element_owners_match_owner_index(self):
        layout = BlockedLayout(7, 5, 3, 2)
        owners = layout.element_owners()
        for i in range(7):
            for j in range(5):
                assert owners[i, j] == layout.owner_index(i, j)

    def test_words_per_owner_sums_to_matrix(self):
        layout = BlockedLayout(13, 9, 4, 3)
        assert sum(layout.words_per_owner()) == 13 * 9

    def test_words_per_owner_balanced(self):
        layout = BlockedLayout(16, 16, 4, 4)
        sizes = layout.words_per_owner()
        assert max(sizes) == min(sizes) == 16
