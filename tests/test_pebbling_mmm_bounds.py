"""Tests for the MMM I/O bounds (Theorems 1 and 2)."""

import math

import pytest

from repro.pebbling.mmm_bounds import (
    greedy_schedule_io,
    hong_kung_asymptotic_bound,
    irony_toledo_tiskin_bound,
    memory_regime,
    minimum_parallel_memory,
    near_optimal_sequential_io,
    parallel_io_lower_bound,
    sequential_io_lower_bound,
    sequential_optimality_ratio,
    smith_vandegeijn_bound,
)


class TestSequentialBound:
    def test_formula(self):
        assert sequential_io_lower_bound(10, 10, 10, 25) == pytest.approx(2 * 1000 / 5 + 100)

    def test_monotone_in_problem_size(self):
        assert sequential_io_lower_bound(20, 20, 20, 64) > sequential_io_lower_bound(10, 10, 10, 64)

    def test_decreasing_in_memory(self):
        assert sequential_io_lower_bound(64, 64, 64, 256) < sequential_io_lower_bound(64, 64, 64, 64)

    def test_tighter_than_hong_kung(self):
        assert sequential_io_lower_bound(32, 32, 32, 64) > hong_kung_asymptotic_bound(32, 32, 32, 64)

    def test_tighter_than_smith_vandegeijn(self):
        # The paper improves the additive term: 2mnk/sqrt(S)+mn > 2mnk/sqrt(S)-2S.
        assert sequential_io_lower_bound(32, 32, 32, 64) > smith_vandegeijn_bound(32, 32, 32, 64)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sequential_io_lower_bound(0, 1, 1, 1)


class TestNearOptimalSequential:
    def test_above_lower_bound(self):
        assert near_optimal_sequential_io(64, 64, 64, 100) >= sequential_io_lower_bound(64, 64, 64, 100)

    def test_ratio_formula(self):
        s = 100
        ratio = sequential_optimality_ratio(s)
        assert ratio == pytest.approx(math.sqrt(s) / (math.sqrt(s + 1) - 1))

    def test_ratio_approaches_one(self):
        # For 10 MB of fast memory (1.25M words) the gap is below 0.1%.
        s = 10 * 1024 * 1024 // 8
        assert sequential_optimality_ratio(s) < 1.001

    def test_ratio_always_above_one(self):
        for s in [4, 16, 100, 10_000]:
            assert sequential_optimality_ratio(s) > 1.0

    def test_greedy_schedule_io_with_square_tiles(self):
        # a = b = sqrt(S) gives exactly the lower bound's leading term.
        m = n = k = 100
        s = 400
        a = b = int(math.sqrt(s))
        assert greedy_schedule_io(m, n, k, a, b) == pytest.approx(
            2 * m * n * k / math.sqrt(s) + m * n
        )


class TestParallelBound:
    def test_limited_memory_branch(self):
        m = n = k = 1024
        p, s = 64, 4096
        # mnk / S^1.5 ~ 4096 > p: limited regime, first branch applies.
        expected = 2 * m * n * k / (p * math.sqrt(s)) + s
        assert parallel_io_lower_bound(m, n, k, p, s) == pytest.approx(expected)

    def test_extra_memory_branch(self):
        m = n = k = 64
        p, s = 512, 1 << 20
        expected = 3 * (m * n * k / p) ** (2 / 3)
        assert parallel_io_lower_bound(m, n, k, p, s) == pytest.approx(expected)

    def test_decreasing_in_p(self):
        assert parallel_io_lower_bound(256, 256, 256, 64, 1024) <= parallel_io_lower_bound(
            256, 256, 256, 16, 1024
        )

    def test_reduces_towards_sequential_for_p1(self):
        m = n = k = 128
        s = 256
        parallel = parallel_io_lower_bound(m, n, k, 1, s)
        sequential = sequential_io_lower_bound(m, n, k, s)
        # Same leading term 2mnk/sqrt(S); additive terms differ (S vs mn).
        assert parallel == pytest.approx(sequential - m * n + s)

    def test_tighter_than_irony_et_al(self):
        m = n = k = 512
        p, s = 64, 2048
        assert parallel_io_lower_bound(m, n, k, p, s) > irony_toledo_tiskin_bound(m, n, k, p, s)


class TestMemoryHelpers:
    def test_minimum_parallel_memory(self):
        assert minimum_parallel_memory(10, 10, 10, 4) == pytest.approx(300 / 4)

    def test_memory_regime_limited(self):
        assert memory_regime(1024, 1024, 1024, 64, 4096) == "limited"

    def test_memory_regime_extra(self):
        assert memory_regime(64, 64, 64, 512, 1 << 20) == "extra"

    def test_regime_boundary_consistency(self):
        # At the boundary p = mnk / S^(3/2) both branches of the bound coincide.
        s = 256
        m = n = k = 256
        p = int(m * n * k / s ** 1.5)
        limited = 2 * m * n * k / (p * math.sqrt(s)) + s
        cubic = 3 * (m * n * k / p) ** (2 / 3)
        assert limited == pytest.approx(cubic, rel=0.01)
