"""Tests for the sequential kernels (numerics + simulated memory traffic)."""

import numpy as np
import pytest

from repro.pebbling.mmm_bounds import near_optimal_sequential_io, sequential_io_lower_bound
from repro.sequential import naive_multiply_lru, rank1_multiply, tiled_multiply


class TestNumericalCorrectness:
    @pytest.mark.parametrize("shape", [(8, 8, 8), (12, 7, 9), (5, 16, 3), (1, 1, 1)])
    def test_tiled_matches_numpy(self, rng, shape):
        m, n, k = shape
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = tiled_multiply(a, b, memory_words=32)
        assert np.allclose(result.matrix, a @ b)

    @pytest.mark.parametrize("shape", [(8, 8, 8), (10, 6, 4)])
    def test_rank1_matches_numpy(self, rng, shape):
        m, n, k = shape
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = rank1_multiply(a, b, memory_words=24)
        assert np.allclose(result.matrix, a @ b)

    def test_naive_matches_numpy(self, rng):
        a = rng.standard_normal((6, 5))
        b = rng.standard_normal((5, 7))
        result = naive_multiply_lru(a, b, memory_words=16)
        assert np.allclose(result.matrix, a @ b)

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            tiled_multiply(rng.standard_normal((4, 3)), rng.standard_normal((5, 4)), 32)

    def test_non_2d_rejected(self, rng):
        with pytest.raises(ValueError):
            tiled_multiply(rng.standard_normal(4), rng.standard_normal((4, 4)), 32)


class TestMemoryTraffic:
    def test_tiled_io_matches_schedule_prediction(self, rng):
        a = rng.standard_normal((12, 10))
        b = rng.standard_normal((10, 14))
        result = tiled_multiply(a, b, memory_words=30)
        assert result.io == result.schedule.predicted_io()

    def test_tiled_io_close_to_lower_bound(self, rng):
        m = n = k = 24
        s = 64
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = tiled_multiply(a, b, memory_words=s)
        bound = sequential_io_lower_bound(m, n, k, s)
        feasible = near_optimal_sequential_io(m, n, k, s)
        # Measured I/O lies between the hard lower bound (scaled by the small
        # discretization slack) and ~1.6x the feasible schedule's prediction.
        assert result.io <= 1.6 * feasible
        assert result.io >= 0.5 * bound

    def test_more_memory_means_less_io(self, rng):
        a = rng.standard_normal((20, 20))
        b = rng.standard_normal((20, 20))
        small = tiled_multiply(a, b, memory_words=16)
        large = tiled_multiply(a, b, memory_words=128)
        assert large.io < small.io

    def test_tiled_beats_naive_lru(self, rng):
        m = n = k = 16
        s = 40
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        scheduled = tiled_multiply(a, b, memory_words=s)
        naive = naive_multiply_lru(a, b, memory_words=s)
        assert scheduled.io < naive.io

    def test_optimal_tiles_not_worse_than_square_tiles(self, rng):
        m = n = k = 20
        s = 26
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        optimal = tiled_multiply(a, b, memory_words=s)
        square = rank1_multiply(a, b, memory_words=s)
        assert optimal.io <= square.io * 1.05

    def test_peak_resident_within_capacity(self, rng):
        a = rng.standard_normal((10, 8))
        b = rng.standard_normal((8, 12))
        result = tiled_multiply(a, b, memory_words=20)
        assert result.stats.peak_resident <= result.schedule.required_red_pebbles()

    def test_compute_count_equals_mnk(self, rng):
        m, n, k = 9, 7, 5
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = tiled_multiply(a, b, memory_words=24)
        assert result.stats.computes == m * n * k

    def test_stores_equal_output_size(self, rng):
        m, n, k = 9, 7, 5
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = tiled_multiply(a, b, memory_words=24)
        assert result.stats.stores == m * n

    def test_naive_lru_io_large_when_cache_small(self, rng):
        m = n = k = 12
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = naive_multiply_lru(a, b, memory_words=8)
        # With a tiny cache the naive order misses on nearly every B access.
        assert result.io > m * n * k / 2
