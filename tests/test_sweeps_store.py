"""Tests for the content-addressed result store: caching, resume, stability."""

import json
import subprocess
import sys

import pytest

from repro.experiments.harness import run_algorithm
from repro.sweeps.runner import run_campaign
from repro.sweeps.spec import SweepSpec
from repro.sweeps.store import (
    KEY_VERSION,
    ResultStore,
    record_to_run,
    run_key,
    run_to_record,
)
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import square_shape


@pytest.fixture
def scenario() -> Scenario:
    return Scenario(name="square-limited-p4", shape=square_shape(24), p=4,
                    memory_words=1024, regime="limited")


@pytest.fixture
def spec() -> SweepSpec:
    return SweepSpec(name="store-test", algorithms=("COSMA", "CARMA"),
                     families=("square",), regimes=("limited",),
                     p_values=(4, 9), memory_words=1024, mode="volume")


class TestRunKey:
    def test_deterministic_within_process(self, scenario):
        assert run_key("COSMA", scenario, "volume") == run_key("COSMA", scenario, "volume")

    def test_sensitive_to_parameters(self, scenario):
        base = run_key("COSMA", scenario, "volume", seed=0, verify=True)
        other_scenario = Scenario(name=scenario.name, shape=square_shape(25), p=scenario.p,
                                  memory_words=scenario.memory_words, regime=scenario.regime)
        assert run_key("CARMA", scenario, "volume") != base
        assert run_key("COSMA", other_scenario, "volume") != base
        assert run_key("COSMA", scenario, "legacy") != base
        assert run_key("COSMA", scenario, "volume", seed=1) != base
        assert run_key("COSMA", scenario, "volume", verify=False) != base

    def test_stable_across_processes(self, scenario):
        """Keys must not involve Python's per-process randomized hash()."""
        script = (
            "from repro.sweeps.store import run_key\n"
            "from repro.workloads.scaling import Scenario\n"
            "from repro.workloads.shapes import square_shape\n"
            "s = Scenario(name='square-limited-p4', shape=square_shape(24), p=4,"
            " memory_words=1024, regime='limited')\n"
            "print(run_key('COSMA', s, 'volume'))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == run_key("COSMA", scenario, "volume")

    def test_key_version_participates(self, scenario, monkeypatch):
        base = run_key("COSMA", scenario, "volume")
        monkeypatch.setattr("repro.sweeps.store.KEY_VERSION", KEY_VERSION + 1)
        assert run_key("COSMA", scenario, "volume") != base


class TestRecordRoundtrip:
    def test_run_record_roundtrip_is_exact(self, scenario):
        run = run_algorithm("COSMA", scenario, mode="volume")
        key = run_key("COSMA", scenario, "volume")
        # JSON floats round-trip exactly (shortest-repr), so the rebuilt run
        # must equal the original field for field.
        clone = record_to_run(json.loads(json.dumps(run_to_record(run, key))))
        assert clone == run

    def test_record_to_run_rejects_failures(self, scenario):
        with pytest.raises(ValueError):
            record_to_run({"key": "k", "status": "failed"})


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert "missing" not in store
        assert store.get("missing") is None
        store.put({"key": "abc", "status": "ok", "payload": 1})
        assert "abc" in store
        assert store.get("abc")["payload"] == 1
        assert len(store) == 1

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "store"
        ResultStore(path).put({"key": "abc", "status": "ok"})
        assert "abc" in ResultStore(path)

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "abc", "value": 1})
        store.put({"key": "abc", "value": 2})
        assert store.get("abc")["value"] == 2
        assert ResultStore(path).get("abc")["value"] == 2

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "good", "value": 1})
        with store.results_file.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "val')  # killed mid-append
        reloaded = ResultStore(path)
        assert "good" in reloaded
        assert "torn" not in reloaded

    def test_record_without_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store").put({"status": "ok"})


class TestResume:
    def test_second_campaign_is_all_cache(self, tmp_path, spec):
        store_path = tmp_path / "store"
        cold = run_campaign(spec, store=store_path, jobs=1)
        assert (cold.executed, cold.cached) == (4, 0)
        warm = run_campaign(spec, store=store_path, jobs=1)
        assert (warm.executed, warm.cached) == (0, 4)
        assert [r["key"] for r in warm.records] == [r["key"] for r in cold.records]

    def test_interrupted_campaign_resumes_missing_keys_only(self, tmp_path, spec):
        """Kill mid-campaign (simulated by dropping records), rerun, and
        assert only the missing keys execute."""
        store_path = tmp_path / "store"
        full = run_campaign(spec, store=store_path, jobs=1)
        lines = store_path.joinpath("results.jsonl").read_text().splitlines()
        assert len(lines) == 4
        # Keep only the first run's record plus a torn partial write.
        store_path.joinpath("results.jsonl").write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        resumed = run_campaign(spec, store=store_path, jobs=1)
        assert (resumed.executed, resumed.cached) == (3, 1)
        assert [r["key"] for r in resumed.records] == [r["key"] for r in full.records]
        assert resumed.records == full.records

    def test_no_resume_reexecutes_everything(self, tmp_path, spec):
        store_path = tmp_path / "store"
        run_campaign(spec, store=store_path, jobs=1)
        forced = run_campaign(spec, store=store_path, jobs=1, resume=False)
        assert (forced.executed, forced.cached) == (4, 0)
