"""Tests for the content-addressed result store: caching, resume, stability."""

import json
import subprocess
import sys
import time

import pytest

from repro.experiments.harness import run_algorithm
from repro.sweeps.runner import run_campaign
from repro.sweeps.spec import SweepSpec
from repro.sweeps.store import (
    KEY_VERSION,
    ResultStore,
    record_to_run,
    run_key,
    run_to_record,
)
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import square_shape


@pytest.fixture
def scenario() -> Scenario:
    return Scenario(name="square-limited-p4", shape=square_shape(24), p=4,
                    memory_words=1024, regime="limited")


@pytest.fixture
def spec() -> SweepSpec:
    return SweepSpec(name="store-test", algorithms=("COSMA", "CARMA"),
                     families=("square",), regimes=("limited",),
                     p_values=(4, 9), memory_words=1024, mode="volume")


class TestRunKey:
    def test_deterministic_within_process(self, scenario):
        assert run_key("COSMA", scenario, "volume") == run_key("COSMA", scenario, "volume")

    def test_sensitive_to_parameters(self, scenario):
        base = run_key("COSMA", scenario, "volume", seed=0, verify=True)
        other_scenario = Scenario(name=scenario.name, shape=square_shape(25), p=scenario.p,
                                  memory_words=scenario.memory_words, regime=scenario.regime)
        assert run_key("CARMA", scenario, "volume") != base
        assert run_key("COSMA", other_scenario, "volume") != base
        assert run_key("COSMA", scenario, "legacy") != base
        assert run_key("COSMA", scenario, "volume", seed=1) != base
        assert run_key("COSMA", scenario, "volume", verify=False) != base

    def test_stable_across_processes(self, scenario):
        """Keys must not involve Python's per-process randomized hash()."""
        script = (
            "from repro.sweeps.store import run_key\n"
            "from repro.workloads.scaling import Scenario\n"
            "from repro.workloads.shapes import square_shape\n"
            "s = Scenario(name='square-limited-p4', shape=square_shape(24), p=4,"
            " memory_words=1024, regime='limited')\n"
            "print(run_key('COSMA', s, 'volume'))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == run_key("COSMA", scenario, "volume")

    def test_key_version_participates(self, scenario, monkeypatch):
        base = run_key("COSMA", scenario, "volume")
        monkeypatch.setattr("repro.sweeps.store.KEY_VERSION", KEY_VERSION + 1)
        assert run_key("COSMA", scenario, "volume") != base


class TestRecordRoundtrip:
    def test_run_record_roundtrip_is_exact(self, scenario):
        run = run_algorithm("COSMA", scenario, mode="volume")
        key = run_key("COSMA", scenario, "volume")
        # JSON floats round-trip exactly (shortest-repr), so the rebuilt run
        # must equal the original field for field.
        clone = record_to_run(json.loads(json.dumps(run_to_record(run, key))))
        assert clone == run

    def test_record_to_run_rejects_failures(self, scenario):
        with pytest.raises(ValueError):
            record_to_run({"key": "k", "status": "failed"})


class TestResultStore:
    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert "missing" not in store
        assert store.get("missing") is None
        store.put({"key": "abc", "status": "ok", "payload": 1})
        assert "abc" in store
        assert store.get("abc")["payload"] == 1
        assert len(store) == 1

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "store"
        ResultStore(path).put({"key": "abc", "status": "ok"})
        assert "abc" in ResultStore(path)

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "abc", "value": 1})
        store.put({"key": "abc", "value": 2})
        assert store.get("abc")["value"] == 2
        assert ResultStore(path).get("abc")["value"] == 2

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "good", "value": 1})
        with store.results_file.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "val')  # killed mid-append
        reloaded = ResultStore(path)
        assert "good" in reloaded
        assert "torn" not in reloaded

    def test_record_without_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store").put({"status": "ok"})


class TestResume:
    def test_second_campaign_is_all_cache(self, tmp_path, spec):
        store_path = tmp_path / "store"
        cold = run_campaign(spec, store=store_path, jobs=1)
        assert (cold.executed, cold.cached) == (4, 0)
        warm = run_campaign(spec, store=store_path, jobs=1)
        assert (warm.executed, warm.cached) == (0, 4)
        assert [r["key"] for r in warm.records] == [r["key"] for r in cold.records]

    def test_interrupted_campaign_resumes_missing_keys_only(self, tmp_path, spec):
        """Kill mid-campaign (simulated by dropping records), rerun, and
        assert only the missing keys execute."""
        store_path = tmp_path / "store"
        full = run_campaign(spec, store=store_path, jobs=1)
        lines = store_path.joinpath("results.jsonl").read_text().splitlines()
        assert len(lines) == 4
        # Keep only the first run's record plus a torn partial write.
        store_path.joinpath("results.jsonl").write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        resumed = run_campaign(spec, store=store_path, jobs=1)
        assert (resumed.executed, resumed.cached) == (3, 1)
        assert [r["key"] for r in resumed.records] == [r["key"] for r in full.records]
        assert resumed.records == full.records

    def test_no_resume_reexecutes_everything(self, tmp_path, spec):
        store_path = tmp_path / "store"
        run_campaign(spec, store=store_path, jobs=1)
        forced = run_campaign(spec, store=store_path, jobs=1, resume=False)
        assert (forced.executed, forced.cached) == (4, 0)


def _append_records(path, worker_id, count):
    """Child-process body for the concurrent-append test (fork-safe)."""
    store = ResultStore(path)
    for i in range(count):
        store.put({"key": f"w{worker_id}-r{i}", "status": "ok", "metrics": {},
                   "worker": worker_id, "payload": "x" * 200})


class TestTornWriteRecovery:
    """Satellite: torn-write edge cases the naive text-mode loader mishandled."""

    def test_truncation_mid_multibyte_utf8_char(self, tmp_path):
        """A line cut inside a multibyte UTF-8 character must be skipped as
        torn, not crash the whole reload with UnicodeDecodeError."""
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "good", "value": 1})
        line = json.dumps({"key": "torn", "name": "café-sweep"}, ensure_ascii=False)
        encoded = line.encode("utf-8")
        cut = encoded.index(b"\xc3") + 1  # mid 'é' (0xC3 0xA9)
        assert b"\xc3" in encoded
        with store.results_file.open("ab") as handle:
            handle.write(encoded[:cut])
        reloaded = ResultStore(path)
        assert "good" in reloaded and "torn" not in reloaded
        assert reloaded.stale_lines == 1
        report = reloaded.verify()
        assert report.torn_lines == 1 and not report.clean

    def test_truncation_inside_final_brace(self, tmp_path):
        """Dropping only the closing '}' leaves a valid JSON *prefix* that
        must still parse as torn, not as a record."""
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "good", "value": 1})
        line = json.dumps({"key": "almost", "value": 2})
        assert line.endswith("}")
        with store.results_file.open("a", encoding="utf-8") as handle:
            handle.write(line[:-1])
        reloaded = ResultStore(path)
        assert "good" in reloaded and "almost" not in reloaded
        assert reloaded.verify().torn_lines == 1

    def test_concurrent_appends_interleave_whole_lines(self, tmp_path):
        """Satellite: processes appending under the lock never tear each
        other's lines."""
        import multiprocessing

        path = tmp_path / "store"
        workers = [
            multiprocessing.Process(target=_append_records, args=(path, w, 25))
            for w in range(4)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = ResultStore(path)
        assert len(store) == 100
        report = store.verify()
        assert report.clean, report.summary()
        assert report.total_lines == 100


class TestVerifyCompact:
    def test_verify_counts_duplicates_and_drift(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "a", "status": "ok", "metrics": {}})
        store.put({"key": "a", "status": "ok", "metrics": {}})  # superseded line
        with store.results_file.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"key": "weird", "status": "???"}) + "\n")
            handle.write(json.dumps(["not", "a", "record"]) + "\n")
        report = store.verify()
        assert report.duplicate_lines == 1
        assert report.drifted_lines == 2
        assert not report.clean
        assert any("superseded" in issue for issue in report.issues)

    def test_compact_drops_stale_lines_and_keeps_last_record(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put({"key": "a", "status": "ok", "metrics": {}, "v": 1})
        store.put({"key": "a", "status": "ok", "metrics": {}, "v": 2})
        store.put({"key": "b", "status": "ok", "metrics": {}})
        with store.results_file.open("a", encoding="utf-8") as handle:
            handle.write('{"key": "torn-li')
        store.refresh()
        assert store.stale_lines == 2
        dropped = store.compact()
        assert dropped == 2
        assert store.stale_lines == 0
        assert store.get("a")["v"] == 2 and "b" in store
        reloaded = ResultStore(path)
        assert reloaded.verify().clean
        assert len(reloaded) == 2

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path / "store", fsync="sometimes")
        always = ResultStore(tmp_path / "store2", fsync="always")
        always.put({"key": "a", "status": "ok", "metrics": {}})
        assert ResultStore(tmp_path / "store2").get("a") is not None


class TestStoreGrowth:
    """Satellite: resume=False reruns grow the file; stale_lines + compact
    keep the growth bounded and visible."""

    def test_stale_lines_surface_in_campaign_result(self, tmp_path, spec):
        store_path = tmp_path / "store"
        first = run_campaign(spec, store=store_path, jobs=1)
        assert first.stale_lines == 0
        rerun = run_campaign(spec, store=store_path, jobs=1, resume=False,
                             auto_compact=False)
        assert rerun.stale_lines == 4  # every rerun superseded one line
        again = run_campaign(spec, store=store_path, jobs=1, resume=False,
                             auto_compact=False)
        assert again.stale_lines == 8

    def test_auto_compact_bounds_rerun_growth(self, tmp_path, spec):
        store_path = tmp_path / "store"
        result = run_campaign(spec, store=store_path, jobs=1)
        # Threshold is max(live, 32): drive stale past it with reruns.
        for _ in range(9):
            result = run_campaign(spec, store=store_path, jobs=1, resume=False)
        assert result.stale_lines == 0  # compaction fired and reset the counter
        lines = store_path.joinpath("results.jsonl").read_bytes().count(b"\n")
        assert lines == 4
        assert ResultStore(store_path).verify().clean


class TestLeases:
    def test_acquire_is_exclusive_until_released(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.acquire_leases(["k1", "k2"], owner="a", ttl_s=30.0) == {"k1", "k2"}
        assert store.acquire_leases(["k1", "k3"], owner="b", ttl_s=30.0) == {"k3"}
        assert store.live_leases() == {"k1": "a", "k2": "a", "k3": "b"}
        store.release_leases(["k1", "k2"], owner="b")  # not the owner: no-op
        assert store.live_leases() == {"k1": "a", "k2": "a", "k3": "b"}
        store.release_leases(["k1", "k2"], owner="a")
        assert store.acquire_leases(["k1"], owner="b", ttl_s=30.0) == {"k1"}

    def test_leases_expire_and_renew(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.acquire_leases(["k1"], owner="a", ttl_s=0.2)
        store.acquire_leases(["k2"], owner="a", ttl_s=0.2)
        store.renew_leases(["k1"], owner="a", ttl_s=30.0)
        time.sleep(0.25)
        assert store.live_leases() == {"k1": "a"}
        assert store.acquire_leases(["k2"], owner="b", ttl_s=30.0) == {"k2"}
