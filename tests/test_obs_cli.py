"""Telemetry layer: the CLI surface (trace subcommand, flags, structured output).

Contracts under test: ``repro trace <multiply|sweep ...>`` writes a
Perfetto-loadable Chrome trace (and optional JSONL event log) while keeping
``--json`` stdout machine-readable (all notices go to stderr); the inline
``--trace`` / ``--profile`` flags do the same for plain multiply/sweep; and
``store verify`` honours its documented exit-code contract (0 clean, 1
dirty, 2 no store) with a ``--json`` structured report.
"""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace
from repro.obs.trace import active_tracer


def _multiply_args(*extra: str) -> list[str]:
    return ["--m", "32", "--n", "32", "--k", "32",
            "--processors", "4", "--memory", "4096", *extra]


def _sweep_args(store, *extra: str) -> list[str]:
    return ["--families", "square", "--regimes", "limited",
            "--processors", "4", "--memory", "1024",
            "--algorithms", "COSMA", "--out", str(store),
            "--no-progress", *extra]


class TestTraceSubcommand:
    def test_traced_multiply_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        events_path = tmp_path / "events.jsonl"
        code = main(["trace", "--out", str(trace_path),
                     "--events", str(events_path),
                     "multiply", *_multiply_args()])
        assert code == 0
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) == []
        names = {e.get("name") for e in document["traceEvents"]}
        assert "round" in names and "multiply:COSMA" in names
        events = [json.loads(line) for line in
                  events_path.read_text().splitlines()]
        assert any(e["name"] == "round" for e in events)
        err = capsys.readouterr().err
        assert "wrote Chrome trace" in err and str(trace_path) in err

    def test_traced_sweep_json_stdout_stays_machine_readable(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(["trace", "--out", str(trace_path),
                     "sweep", *_sweep_args(tmp_path / "store", "--json")])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)  # notices must not corrupt stdout
        assert payload["executed"] == 1
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []

    def test_tracer_deactivated_after_command(self, tmp_path):
        main(["trace", "--out", str(tmp_path / "t.json"),
              "multiply", *_multiply_args()])
        assert active_tracer() is None


class TestInlineFlags:
    def test_multiply_trace_flag(self, tmp_path, capsys):
        trace_path = tmp_path / "inline.json"
        code = main(["multiply", *_multiply_args("--trace", str(trace_path))])
        assert code == 0
        assert validate_chrome_trace(json.loads(trace_path.read_text())) == []
        assert "wrote Chrome trace" in capsys.readouterr().err

    def test_multiply_profile_flag_reports_to_stderr(self, capsys):
        code = main(["multiply", *_multiply_args("--profile", "5")])
        captured = capsys.readouterr()
        assert code == 0
        assert "cumulative" in captured.err  # pstats table, not stdout
        assert "verified against numpy: OK" in captured.out

    def test_sweep_json_includes_metrics_and_summary_fields(self, tmp_path, capsys):
        code = main(["sweep", *_sweep_args(tmp_path / "store", "--json")])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executed"] == 1 and payload["failed"] == 0
        assert payload["metrics"]["sweeps.runs.ok"]["value"] == 1
        assert payload["records"][0]["status"] == "ok"

    def test_sweep_summary_line_by_default(self, tmp_path, capsys):
        code = main(["sweep", *_sweep_args(tmp_path / "store")])
        assert code == 0
        assert "campaign: 1 records ok=1" in capsys.readouterr().out

    def test_unknown_log_level_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--log-level", "loud", "multiply", *_multiply_args()])
        assert excinfo.value.code == 2


class TestStoreVerifyContract:
    def test_clean_store_exits_zero_with_json_report(self, tmp_path, capsys):
        store = tmp_path / "store"
        main(["sweep", *_sweep_args(store)])
        capsys.readouterr()
        code = main(["store", "verify", "--store", str(store), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["clean"] is True
        assert report["ok_records"] == 1 and report["issues"] == []

    def test_dirty_store_exits_one(self, tmp_path, capsys):
        store = tmp_path / "store"
        main(["sweep", *_sweep_args(store)])
        results = store / "results.jsonl"
        line = results.read_text()
        results.write_text(line + line[: len(line) // 2])  # torn tail
        capsys.readouterr()
        code = main(["store", "verify", "--store", str(store), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["clean"] is False and report["torn_lines"] == 1

    def test_missing_store_exits_two(self, tmp_path, capsys):
        code = main(["store", "verify", "--store", str(tmp_path / "absent")])
        assert code == 2
