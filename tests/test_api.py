"""Tests for the top-level public API."""

import numpy as np
import pytest

import repro
from repro import (
    MultiplyResult,
    cosma_cost,
    lower_bound_parallel,
    lower_bound_sequential,
    multiply,
)


class TestMultiply:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((40, 24))
        b = rng.standard_normal((24, 32))
        result = multiply(a, b, processors=6, memory_words=4096)
        assert isinstance(result, MultiplyResult)
        assert np.allclose(result.matrix, a @ b)

    def test_reports_grid_and_usage(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        result = multiply(a, b, processors=8, memory_words=4096)
        pm, pn, pk = result.grid
        assert pm * pn * pk == result.processors_used
        assert result.processors_used <= 8

    def test_communication_profile_consistent(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        result = multiply(a, b, processors=8, memory_words=2048)
        assert result.total_communicated_words >= 0
        assert result.mean_words_per_rank >= result.mean_received_per_rank
        assert result.rounds >= 1
        assert result.lower_bound_per_rank > 0
        assert result.optimality_ratio >= 0

    def test_single_processor_no_communication(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        result = multiply(a, b, processors=1, memory_words=4096)
        assert result.total_communicated_words == 0

    def test_rejects_bad_processor_count(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            multiply(a, b, processors=0, memory_words=1024)

    def test_rejects_bad_memory(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        with pytest.raises(ValueError):
            multiply(a, b, processors=2, memory_words=-5)


class TestCostHelpers:
    def test_cosma_cost_equals_parallel_bound(self):
        assert cosma_cost(256, 256, 256, 16, 4096) == pytest.approx(
            lower_bound_parallel(256, 256, 256, 16, 4096)
        )

    def test_sequential_bound_formula(self):
        assert lower_bound_sequential(10, 10, 10, 25) == pytest.approx(2 * 1000 / 5 + 100)

    def test_exports(self):
        assert repro.__version__
        for name in ("multiply", "cosma_cost", "lower_bound_sequential", "lower_bound_parallel"):
            assert name in repro.__all__
