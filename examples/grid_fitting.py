"""Processor-grid fitting and awkward processor counts (Figure 5, section 7.1).

Shows how COSMA's ``FitRanks`` step handles processor counts that do not
factor nicely: it may leave a few ranks idle when that reduces communication
(the paper's p = 65 example), and it keeps the communication volume stable
when a single awkward core is added (the paper's p = 9216 vs 9217 anecdote).

Run with::

    python examples/grid_fitting.py
"""

from __future__ import annotations

from repro.core.grid import candidate_grids, communication_volume_per_rank, fit_ranks


def figure5_example() -> None:
    n, p = 4096, 65
    fitted = fit_ranks(n, n, n, p, max_idle_fraction=0.03)
    best_all = min(
        candidate_grids(p, n, n, n), key=lambda g: communication_volume_per_rank(g, n, n, n)
    )
    all_volume = communication_volume_per_rank(best_all, n, n, n)

    print("Figure 5: square matrices on 65 processors")
    print(f"  best grid using all 65 ranks : {best_all.as_tuple()}  "
          f"({all_volume:,.0f} words/rank)")
    print(f"  COSMA's fitted grid          : {fitted.grid.as_tuple()}  "
          f"({fitted.communication_per_rank:,.0f} words/rank, {fitted.idle_ranks} rank idle)")
    print(f"  communication reduction      : {100 * (1 - fitted.communication_per_rank / all_volume):.0f}%")
    extra = fitted.computation_per_rank / (n ** 3 / p) - 1
    print(f"  extra computation per rank   : {100 * extra:.1f}%\n")


def awkward_core_counts() -> None:
    n = 1024
    print("Adding awkward cores should not hurt (section 9):")
    print(f"{'p':>6} {'grid':>14} {'words/rank':>12} {'idle':>5}")
    for p in (96, 97, 128, 131, 144, 149):
        fit = fit_ranks(n, n, n, p, max_idle_fraction=0.03)
        print(
            f"{p:>6} {str(fit.grid.as_tuple()):>14} {fit.communication_per_rank:>12,.0f} "
            f"{fit.idle_ranks:>5}"
        )
    print("\nPrime-ish processor counts cost at most a few idle ranks, never a bad grid.")


if __name__ == "__main__":
    figure5_example()
    awkward_core_counts()
