"""Compare all implemented algorithms across the paper's three memory regimes.

Reproduces a miniature version of the paper's measurement campaign (Figures
6-11): for square matrices and a sweep of simulated core counts, runs COSMA,
ScaLAPACK (SUMMA), CTF (2.5D) and CARMA in the strong-scaling, limited-memory
and extra-memory regimes, and prints the per-rank communication volumes and
simulated runtimes.

Run with::

    python examples/compare_algorithms.py
"""

from __future__ import annotations

from repro.algorithms import DEFAULT_ALGORITHMS
from repro.experiments.harness import sweep
from repro.experiments.perf_model import simulated_time
from repro.experiments.report import format_table, group_by_scenario
from repro.machine.topology import MachineSpec
from repro.workloads.scaling import extra_memory_sweep, limited_memory_sweep, strong_scaling_sweep
from repro.workloads.shapes import square_shape

CORE_COUNTS = [4, 16, 36]
MEMORY_WORDS = 2048
SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)


def scenarios_for(regime: str):
    if regime == "strong":
        return strong_scaling_sweep(square_shape(96), CORE_COUNTS, memory_words=8 * MEMORY_WORDS)
    if regime == "limited":
        return limited_memory_sweep("square", CORE_COUNTS, MEMORY_WORDS)
    return extra_memory_sweep("square", CORE_COUNTS, MEMORY_WORDS)


def main() -> None:
    for regime in ("strong", "limited", "extra"):
        runs = sweep(scenarios_for(regime), algorithms=DEFAULT_ALGORITHMS, seed=0)
        assert all(run.correct for run in runs)
        grouped = group_by_scenario(runs)

        headers = ["p", "shape"] + [
            f"{name} [words/rank | us]" for name in DEFAULT_ALGORITHMS
        ]
        rows = []
        for scenario_name in sorted(grouped, key=lambda s: int(s.rsplit("p", 1)[-1])):
            by_algo = grouped[scenario_name]
            any_run = next(iter(by_algo.values()))
            shape = any_run.scenario.shape
            row = [any_run.scenario.p, f"{shape.m}^3"]
            for name in DEFAULT_ALGORITHMS:
                run = by_algo[name]
                time_us = simulated_time(run, SPEC, overlap=True) * 1e6
                row.append(f"{run.mean_received_per_rank:,.0f} | {time_us:.1f}")
            rows.append(row)

        print(f"\n=== square matrices, {regime} scaling ===")
        print(format_table(headers, rows))

    print(
        "\nReading guide: COSMA's words/rank column is the smallest in every row;"
        " the gap is largest when extra memory is available or the matrices are"
        " non-square (see examples/rpa_tall_skinny.py)."
    )


if __name__ == "__main__":
    main()
