"""Sequential I/O optimality: the red-blue pebble game in action (Theorem 1).

This example works entirely on a single simulated processor with a two-level
memory.  It:

1. builds the MMM CDAG for a small problem and pebbles it with the
   near-optimal schedule of Listing 1, verifying move-by-move legality;
2. compares the measured I/O against the Theorem 1 lower bound
   ``2mnk/sqrt(S) + mn``;
3. sweeps the fast-memory size and contrasts the scheduled kernel against a
   hardware-like LRU cache, showing why explicit scheduling matters.

Run with::

    python examples/sequential_io_optimality.py
"""

from __future__ import annotations

import numpy as np

from repro.pebbling.game import PebbleGame
from repro.pebbling.mmm_bounds import sequential_io_lower_bound, sequential_optimality_ratio
from repro.pebbling.mmm_cdag import build_mmm_cdag
from repro.pebbling.mmm_schedule import optimal_tile_sizes, sequential_mmm_schedule
from repro.sequential import naive_multiply_lru, tiled_multiply


def pebble_small_instance() -> None:
    m = n = k = 10
    s = 20
    mmm = build_mmm_cdag(m, n, k)
    schedule = sequential_mmm_schedule(m, n, k, s)
    game = PebbleGame(mmm.cdag, red_pebbles=schedule.required_red_pebbles())
    result = game.run(schedule.as_pebbling_moves())

    bound = sequential_io_lower_bound(m, n, k, s)
    print("Red-blue pebbling of a 10x10x10 MMM CDAG")
    print(f"  fast memory S            : {s} words  (tiles: {schedule.a} x {schedule.b})")
    print(f"  pebbling legal & complete: {result.complete}")
    print(f"  measured I/O (loads+stores): {result.io}")
    print(f"  Theorem 1 lower bound      : {bound:.0f}")
    print(f"  ratio                      : {result.io / bound:.3f}\n")


def memory_sweep() -> None:
    m = n = k = 32
    rng = np.random.default_rng(0)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))

    print("Memory sweep on a 32^3 multiplication (I/O in words)")
    print(f"{'S':>6} {'tiles':>9} {'lower bound':>12} {'scheduled':>10} {'LRU cache':>10} {'ratio':>6}")
    for s in (32, 64, 128, 256, 512):
        a_opt, b_opt = optimal_tile_sizes(s)
        scheduled = tiled_multiply(a, b, memory_words=s)
        lru = naive_multiply_lru(a, b, memory_words=s)
        bound = sequential_io_lower_bound(m, n, k, s)
        assert np.allclose(scheduled.matrix, a @ b)
        print(
            f"{s:>6} {f'{a_opt}x{b_opt}':>9} {bound:>12.0f} {scheduled.io:>10} {lru.io:>10}"
            f" {scheduled.io / bound:>6.2f}"
        )

    big = 10 * 1024 * 1024 // 8
    print(
        f"\nAt 10 MB of fast memory the feasible schedule is only "
        f"{100 * (sequential_optimality_ratio(big) - 1):.2f}% above the lower bound "
        "(the paper quotes a sub-0.1% gap)."
    )


if __name__ == "__main__":
    pebble_small_instance()
    memory_sweep()
