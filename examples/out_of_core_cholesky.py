"""Beyond MMM: out-of-core Cholesky and deep memory hierarchies.

The paper closes by noting that its I/O-optimality machinery generalizes to
other linear-algebra kernels (LU, Cholesky) and to machines with more than two
memory levels.  This example exercises both extensions:

1. factor a symmetric positive-definite matrix with the blocked out-of-core
   Cholesky, counting its slow-memory traffic and comparing it against the
   Cholesky I/O lower bound ``n^3/(3 sqrt(S)) + n^2``;
2. derive a nested tiled MMM schedule for a three-level memory hierarchy and
   compare the per-level traffic against the per-level Theorem 1 bounds.

Run with::

    python examples/out_of_core_cholesky.py
"""

from __future__ import annotations

import numpy as np

from repro.extensions.factorizations import cholesky_io_lower_bound, out_of_core_cholesky
from repro.extensions.multilevel import multilevel_schedule, simulate_multilevel_io


def cholesky_demo() -> None:
    n = 72
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    spd = a @ a.T + n * np.eye(n)
    reference = np.linalg.cholesky(spd)

    print("Out-of-core blocked Cholesky (n = 72)")
    print(f"{'S [words]':>10} {'block':>6} {'measured I/O':>13} {'lower bound':>12} {'ratio':>6}")
    for s in (3 * 9 * 9, 3 * 18 * 18, 3 * 36 * 36):
        run = out_of_core_cholesky(spd, memory_words=s)
        assert np.allclose(run.factor, reference, atol=1e-7)
        bound = cholesky_io_lower_bound(n, s)
        print(f"{s:>10} {run.block_size:>6} {run.io:>13,} {bound:>12,.0f} {run.io / bound:>6.2f}")
    print("factors verified against numpy.linalg.cholesky: OK\n")


def multilevel_demo() -> None:
    m = n = k = 48
    capacities = [32, 512, 8192]  # e.g. registers / L1 / L2 (in words)
    schedule = multilevel_schedule(m, n, k, capacities)
    misses = simulate_multilevel_io(schedule, capacities)

    print("Nested tiling for a 3-level memory hierarchy (48^3 MMM)")
    print(f"{'level':>5} {'capacity':>9} {'tile':>8} {'Theorem-1 bound':>16} {'predicted':>10} {'LRU replay':>11}")
    for level, measured in zip(schedule.levels, misses):
        print(
            f"{level.level:>5} {level.capacity_words:>9} "
            f"{f'{level.tile_m}x{level.tile_n}':>8} {level.lower_bound:>16,.0f} "
            f"{level.predicted_traffic:>10,.0f} {measured:>11,}"
        )
    print(
        "\nEach level's traffic obeys its own Theorem-1 bound; the innermost level"
        " moves the most words, exactly as the nested analysis predicts."
    )


if __name__ == "__main__":
    cholesky_demo()
    multilevel_demo()
