"""Quickstart: multiply two matrices with COSMA on a simulated cluster.

Run with::

    python examples/quickstart.py

The example multiplies a 256 x 192 by a 192 x 320 matrix on 16 simulated
processors, verifies the result against numpy, and prints the communication
profile together with the Theorem 2 lower bound, showing how close the
schedule is to communication optimality.
"""

from __future__ import annotations

import numpy as np

from repro import lower_bound_parallel, multiply, plan


def main() -> None:
    rng = np.random.default_rng(0)
    m, n, k = 256, 320, 192
    processors = 16
    memory_words = 16_384  # words (matrix elements) of fast memory per processor

    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))

    result = multiply(a, b, processors=processors, memory_words=memory_words)

    assert np.allclose(result.matrix, a @ b), "distributed result must match numpy"

    print("COSMA quickstart")
    print("----------------")
    print(f"problem                 : C({m} x {n}) = A({m} x {k}) @ B({k} x {n})")
    print(f"processors              : {processors} (grid {result.grid}, {result.processors_used} used)")
    print(f"memory per processor    : {memory_words} words")
    print(f"communication rounds    : {result.rounds}")
    print(f"words received per rank : {result.mean_received_per_rank:,.0f}")
    print(f"Theorem 2 lower bound   : {lower_bound_parallel(m, n, k, processors, memory_words):,.0f}")
    print(f"total words on the wire : {result.total_communicated_words:,}")
    print("result verified against numpy: OK")

    # The planning layer answers "what would COSMA do?" without executing --
    # here at a scale no laptop could multiply for real.
    big = plan(65_536, 65_536, 65_536, processors=16_384, memory_words=2**24)
    print(f"\nplanned paper-scale grid: {big.grid} "
          f"({big.predicted_words_per_rank:,.0f} predicted words/rank, "
          f"{big.predicted_optimality_ratio:.2f}x the Theorem 2 bound)")


if __name__ == "__main__":
    main()
