"""Tall-and-skinny multiplication from the RPA application (section 8).

The paper's flagship real-world workload computes the random phase
approximation (RPA) energy of water molecules: for ``w`` molecules the
matrices have ``m = n = 136 w`` and ``k = 228 w^2`` -- extremely
"tall-and-skinny" inputs for which fixed 2D decompositions communicate
catastrophically more than necessary.

This example reproduces that comparison at simulator scale: it runs COSMA and
the ScaLAPACK-style 2D baseline on a scaled-down RPA shape and reports the
communication volumes and simulated runtimes.

Run with::

    python examples/rpa_tall_skinny.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines.summa import summa_multiply
from repro.core.cosma import cosma_multiply
from repro.experiments.perf_model import simulated_time
from repro.experiments.harness import run_algorithm
from repro.machine.topology import MachineSpec
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import rpa_water_shape


def main() -> None:
    # w = 128 molecules in the paper (k = 3.7 million); scale down so that the
    # pure-Python simulator finishes in seconds while keeping k >> m = n.
    shape = rpa_water_shape(molecules=4, scale=0.25)
    processors = 16
    memory_words = 1 << 15

    print("RPA tall-and-skinny example")
    print("---------------------------")
    print(f"shape: m = n = {shape.m}, k = {shape.k}  (family: {shape.family})")
    print(f"processors: {processors}, memory/rank: {memory_words} words\n")

    scenario = Scenario(
        name="rpa-example", shape=shape, p=processors, memory_words=memory_words, regime="strong"
    )
    spec = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)

    rows = []
    for algorithm in ("COSMA", "ScaLAPACK", "CTF", "CARMA"):
        run = run_algorithm(algorithm, scenario, seed=0)
        rows.append(
            (
                algorithm,
                run.mean_received_per_rank,
                simulated_time(run, spec, overlap=True) * 1e3,
                "ok" if run.correct else "WRONG",
            )
        )

    print(f"{'algorithm':<12} {'words recv/rank':>16} {'sim. time [ms]':>15}  verified")
    for name, volume, time_ms, status in rows:
        print(f"{name:<12} {volume:>16,.0f} {time_ms:>15.3f}  {status}")

    cosma_volume = rows[0][1]
    scalapack_volume = rows[1][1]
    print(
        f"\nCOSMA moves {scalapack_volume / max(cosma_volume, 1):.1f}x less data per rank than the"
        " 2D (ScaLAPACK-style) decomposition on this shape."
    )

    # The two dedicated executors can also be called directly:
    rng = np.random.default_rng(1)
    a = rng.standard_normal((shape.m, shape.k))
    b = rng.standard_normal((shape.k, shape.n))
    cosma = cosma_multiply(a, b, processors, memory_words)
    summa = summa_multiply(a, b, processors, memory_words=memory_words)
    assert np.allclose(cosma.matrix, summa.matrix)
    print(f"COSMA grid: {cosma.grid.as_tuple()}, SUMMA grid: {summa.grid} (note the k-parallelism)")


if __name__ == "__main__":
    main()
