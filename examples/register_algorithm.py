"""Register a brand-new algorithm in ~30 lines and compare it to COSMA.

The algorithm registry (:mod:`repro.algorithms`) makes backends pluggable:
decorate a runner with the uniform ``(a, b, scenario, machine)`` signature
with ``@register_algorithm`` and it immediately works in ``api.multiply``,
``api.plan``, the harness, the CLI choice lists and the sweep engine --
including analytic columns in campaign tables when you provide a cost model.

Here we register "RootGEMM", the worst reasonable baseline: gather both
inputs on rank 0, multiply there, scatter C's rows back.  Its per-processor
cost is dominated by rank 0 receiving ~everything, which every distributed
decomposition exists to avoid -- compare the words/rank columns.

Run with::

    python examples/register_algorithm.py

(See ``repro/extensions/allgather.py`` for the curated version of this
pattern: Figure 2's naive 1D all-gather baseline, shipped as an extension.)
"""

from __future__ import annotations

from repro.algorithms import register_algorithm
from repro.experiments.harness import run_scenario
from repro.experiments.report import format_table
from repro.machine.collectives import scatter
from repro.utils.intmath import split_offsets
from repro.workloads.scaling import limited_memory_sweep


@register_algorithm(
    "RootGEMM",
    io_cost=lambda m, n, k, p, s: float(m * k + k * n + m * n) * (p - 1) / p,
    description="gather everything on rank 0, multiply, scatter C",
)
def root_gemm(a, b, scenario, machine):
    m, k = a.shape
    n = b.shape[1]
    p = max(1, min(scenario.p, m))
    ranks = list(range(p))
    rows_a = split_offsets(m, p)
    rows_b = split_offsets(k, p)
    # Everyone starts owning a row stripe of A and B, like the 1D layout;
    # rank 0 pulls every stripe, multiplies locally, scatters C's rows back.
    for r, (lo, hi) in zip(ranks, rows_a):
        machine.send(r, 0, a[lo:hi, :], kind="input")
    for r, (lo, hi) in zip(ranks, rows_b):
        machine.send(r, 0, b[lo:hi, :], kind="input")
    c = machine.local_multiply(0, a, b)
    scatter(machine, 0, ranks, {r: c[lo:hi, :] for r, (lo, hi) in zip(ranks, rows_a)},
            kind="output")
    return c


def main() -> None:
    scenario = limited_memory_sweep("square", [9], 4096)[0]
    runs = run_scenario(scenario, algorithms=("COSMA", "ScaLAPACK", "RootGEMM"))
    rows = [
        [name, run.correct, round(run.mean_words_per_rank), round(run.max_words_per_rank)]
        for name, run in runs.items()
    ]
    print(f"scenario: {scenario.name} (p={scenario.p}, S={scenario.memory_words} words)")
    print(format_table(["algorithm", "correct", "mean words/rank", "max words/rank"], rows))


if __name__ == "__main__":
    main()
