# Developer entry points (the tier-1 command from ROADMAP.md lives here too).
#
#   make verify       - tier-1 test suite
#   make lint         - ruff check (config in pyproject.toml; skipped when absent)
#   make sweep-smoke  - tiny 4-point sweep campaign through the engine (--jobs 2)
#   make chaos        - deterministic fault-injection suite (crashes, hangs,
#                       transients, torn writes; writes CHAOS_quarantine.json)
#   make bench        - full paper figure/table benchmark suite
#   make bench-sweep  - sweep-engine timing benchmark (writes BENCH_sweep.json)
#   make bench-smoke  - paper-scale regression gate + reduced-scale fast-path
#                       benchmark (what CI's bench-smoke job runs)

PY ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: verify lint sweep-smoke chaos bench bench-sweep bench-smoke

verify:
	$(PY) -m pytest -x -q

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed - skipping lint (pip install ruff)"; \
	fi

sweep-smoke:
	$(PY) -m repro sweep --families square --regimes limited --processors 4 9 \
		--algorithms COSMA CARMA --mode volume --jobs 2 --out .sweep-cache/smoke

chaos:
	REPRO_CHAOS_REPORT=CHAOS_quarantine.json $(PY) -m pytest tests/test_sweeps_chaos.py -q

bench:
	$(PY) -m pytest benchmarks/bench_*.py -s

bench-sweep:
	$(PY) -m pytest benchmarks/bench_sweep_engine.py -s

bench-smoke:
	$(PY) benchmarks/check_bench_regression.py --baseline BENCH_simulator.json
	REPRO_BENCH_SMOKE=1 $(PY) -m pytest benchmarks/bench_simulator_fastpath.py -s
	$(PY) -m pytest benchmarks/bench_sweep_engine.py -s
