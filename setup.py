"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without the ``wheel`` package
(legacy ``python setup.py develop`` / offline editable installs).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "COSMA reproduction: near communication-optimal parallel matrix-matrix "
        "multiplication via red-blue pebbling (SC 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
